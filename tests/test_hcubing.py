"""Unit + property tests for the H-Cubing baseline."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.hcubing import h_cubing, h_cubing_detailed
from repro.cube.cell import apex_cell
from repro.cube.full_cube import compute_full_cube
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_paper_example_matches_oracle():
    table = make_paper_table()
    assert cubes_equal(
        h_cubing(table).as_dict(), compute_full_cube(table).as_dict()
    )


def test_apex_present():
    table = make_paper_table()
    cube = h_cubing(table)
    assert cube.lookup(apex_cell(4))[0] == 6


def test_empty_table():
    schema = Schema.from_names(["a"])
    table = BaseTable(schema, np.zeros((0, 1), dtype=np.int64))
    assert len(h_cubing(table)) == 0


def test_single_dimension():
    table = make_encoded_table([(0,), (1,), (0,)])
    cube = h_cubing(table)
    assert cube.lookup((0,))[0] == 2
    assert cube.lookup((1,))[0] == 1
    assert len(cube) == 3


def test_order_parameter_is_transparent():
    table = make_paper_table()
    oracle = compute_full_cube(table).as_dict()
    for order in [(3, 2, 1, 0), (2, 0, 3, 1)]:
        assert cubes_equal(h_cubing(table, dim_order=order).as_dict(), oracle)


def test_detailed_reports_htree_nodes():
    table = make_paper_table()
    _, stats = h_cubing_detailed(table)
    assert stats["htree_nodes"] == 20
    assert stats["total_seconds"] >= 0


def test_iceberg_matches_filtered_oracle():
    table = make_paper_table()
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(h_cubing(table, min_support=min_support).as_dict(), expected)


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_matches_oracle_on_random_tables(table):
    assert cubes_equal(
        h_cubing(table).as_dict(), compute_full_cube(table).as_dict()
    )


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_iceberg_property(table):
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(
            h_cubing(table, min_support=min_support).as_dict(), expected
        )
