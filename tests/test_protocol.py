"""Unit tests for the unified serving wire protocol (repro.serve.protocol)."""

import json
import warnings

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    HTTP_STATUS,
    OPS,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    BatchResponse,
    ErrorCode,
    ErrorInfo,
    QueryRequest,
    QueryResponse,
    ServeError,
    coerce_request,
    error_response,
)


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


def test_query_request_round_trips_every_field():
    request = QueryRequest(
        op="dice",
        cell=[1, None, 3],
        dim="city",
        predicates={"1": [0, 2]},
        version=4,
        protocol=PROTOCOL_VERSION,
    )
    wire = request.to_json()
    assert wire == {
        "op": "dice",
        "cell": [1, None, 3],
        "dim": "city",
        "predicates": {"1": [0, 2]},
        "version": 4,
        "protocol": PROTOCOL_VERSION,
    }
    # wire dicts survive a real JSON round trip
    decoded = QueryRequest.from_json(json.loads(json.dumps(wire)))
    assert decoded == request


def test_query_request_omits_unset_fields():
    assert QueryRequest(op="point", cell=[0, None]).to_json() == {
        "op": "point",
        "cell": [0, None],
    }
    assert QueryRequest().to_json() == {"op": "point"}


def test_from_json_rejects_non_mappings_and_bad_protocol():
    with pytest.raises(ServeError):
        QueryRequest.from_json([1, 2, 3])
    with pytest.raises(ServeError) as excinfo:
        QueryRequest.from_json({"op": "point", "protocol": PROTOCOL_VERSION + 1})
    assert excinfo.value.info.code == ErrorCode.UNSUPPORTED_PROTOCOL
    assert excinfo.value.info.http_status == 400
    # pinning the supported version is fine
    QueryRequest.from_json({"op": "point", "protocol": PROTOCOL_VERSION})


def test_coerce_request_passes_typed_through_and_warns_once_for_dicts(monkeypatch):
    typed = QueryRequest(op="point", cell=[0])
    assert coerce_request(typed) is typed

    monkeypatch.setattr(protocol, "_warned_dict_requests", False)
    with pytest.warns(DeprecationWarning, match="QueryRequest"):
        first = coerce_request({"op": "point", "cell": [0]})
    assert first == typed
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second coercion must stay silent
        coerce_request({"op": "point", "cell": [0]})


def test_coerce_request_reraises_carried_serve_errors():
    carrier = ServeError("bad item", code=ErrorCode.UNSUPPORTED_PROTOCOL)
    with pytest.raises(ServeError) as excinfo:
        coerce_request(carrier)
    assert excinfo.value is carrier


def test_wire_decode_path_never_warns():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        QueryRequest.from_json({"op": "slice", "cell": [None, 1]})


# ---------------------------------------------------------------------------
# the error taxonomy
# ---------------------------------------------------------------------------


def test_every_code_has_a_status_and_the_retryable_set_is_sane():
    codes = {
        v for k, v in vars(ErrorCode).items() if not k.startswith("_")
    }
    assert codes == set(HTTP_STATUS)
    assert RETRYABLE_CODES < codes
    assert HTTP_STATUS[ErrorCode.NOT_FOUND] == 404
    assert HTTP_STATUS[ErrorCode.TOO_LARGE] == 413
    assert HTTP_STATUS[ErrorCode.VERSION_CONFLICT] == 409
    assert HTTP_STATUS[ErrorCode.SHARD_UNAVAILABLE] == 503
    assert HTTP_STATUS[ErrorCode.SHARD_TIMEOUT] == 504


def test_error_info_round_trip_and_shard_omission():
    info = ErrorInfo(
        code=ErrorCode.SHARD_TIMEOUT, message="slow", retryable=True, shard=2
    )
    wire = info.to_json()
    assert wire == {
        "code": "shard_timeout", "message": "slow", "retryable": True, "shard": 2,
    }
    assert ErrorInfo.from_json(wire) == info
    # shard is omitted when unattributable
    assert "shard" not in ErrorInfo(code=ErrorCode.BAD_REQUEST, message="x").to_json()


def test_error_info_parses_legacy_bare_strings():
    info = ErrorInfo.from_json("cell must be a list")
    assert info.code == ErrorCode.BAD_REQUEST
    assert info.message == "cell must be a list"
    with pytest.raises(ValueError):
        ErrorInfo.from_json(17)


def test_serve_error_defaults_retryable_from_the_code():
    assert ServeError("x").info.retryable is False
    assert ServeError("x", code=ErrorCode.SHARD_UNAVAILABLE).info.retryable is True
    explicit = ServeError("x", code=ErrorCode.SHARD_UNAVAILABLE, retryable=False)
    assert explicit.info.retryable is False
    # str() stays the bare message for match= call sites
    assert str(ServeError("just the message")) == "just the message"


def test_serve_error_from_info_round_trips():
    info = ErrorInfo(
        code=ErrorCode.VERSION_CONFLICT, message="torn", retryable=True, shard=1
    )
    assert ServeError.from_info(info).info == info


# ---------------------------------------------------------------------------
# responses
# ---------------------------------------------------------------------------


def test_point_response_shape_matches_the_historical_wire_dict():
    response = QueryResponse(
        op="point", version=3, cell=[1, None], value={"count": 2}, cached=False
    )
    assert response.to_json() == {
        "op": "point",
        "version": 3,
        "cell": [1, None],
        "value": {"count": 2},
        "cached": False,
    }
    assert response.ok


def test_null_value_is_an_answer_not_an_omission():
    wire = QueryResponse(op="point", version=0, cell=[9], value=None).to_json()
    assert "value" in wire and wire["value"] is None


def test_error_response_short_circuits_to_op_version_error():
    info = ErrorInfo(code=ErrorCode.BAD_REQUEST, message="nope")
    wire = error_response(5, "rollup", info)
    assert wire == {
        "op": "rollup",
        "version": 5,
        "error": {"code": "bad_request", "message": "nope", "retryable": False},
    }
    decoded = QueryResponse.from_json(wire)
    assert not decoded.ok and decoded.error == info


def test_batch_response_envelope():
    results = [{"op": "point", "version": 0, "cell": [0], "value": None}]
    wire = BatchResponse(results).to_json()
    assert wire == {"results": results, "count": 1, "protocol": PROTOCOL_VERSION}
    assert BatchResponse.from_json(wire).results == results
    with pytest.raises(ServeError):
        BatchResponse.from_json({"count": 0})


def test_ops_constant_matches_the_engine():
    from repro.serve import QueryEngine

    assert tuple(OPS) == tuple(QueryEngine.OPS)
