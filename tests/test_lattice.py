"""Unit tests for repro.cube.lattice."""

import pytest

from repro.cube.lattice import CuboidLattice


def test_counts_and_extremes():
    lattice = CuboidLattice(4)
    assert lattice.n_cuboids == 16
    assert lattice.apex == 0
    assert lattice.base == 0b1111


def test_refuses_absurd_dimensionality():
    with pytest.raises(ValueError):
        CuboidLattice(31)
    with pytest.raises(ValueError):
        CuboidLattice(-1)


def test_dims_of_and_mask_of_invert():
    lattice = CuboidLattice(5)
    for mask in lattice:
        assert lattice.mask_of(lattice.dims_of(mask)) == mask


def test_mask_of_bounds_checked():
    with pytest.raises(IndexError):
        CuboidLattice(3).mask_of([3])


def test_by_level_partitions_all_cuboids():
    lattice = CuboidLattice(4)
    levels = list(lattice.by_level())
    assert len(levels) == 5
    assert [len(level) for level in levels] == [1, 4, 6, 4, 1]  # binomials
    assert sorted(m for level in levels for m in level) == list(range(16))


def test_roll_ups_and_drill_downs_are_inverse_edges():
    lattice = CuboidLattice(4)
    for mask in lattice:
        for up in lattice.roll_ups(mask):
            assert lattice.level(up) == lattice.level(mask) - 1
            assert mask in set(lattice.drill_downs(up))
        for down in lattice.drill_downs(mask):
            assert lattice.level(down) == lattice.level(mask) + 1


def test_is_roll_up_of():
    lattice = CuboidLattice(3)
    assert lattice.is_roll_up_of(0b001, 0b011)
    assert not lattice.is_roll_up_of(0b100, 0b011)
    assert lattice.is_roll_up_of(0, 0b111)  # apex generalizes everything


def test_name_rendering_matches_paper_style():
    lattice = CuboidLattice(4)
    name = lattice.name(0b0011, ["store", "city", "product", "date"])
    assert name == "(store, city, *, *)"
    assert lattice.name(0) == "(*, *, *, *)"


def test_to_networkx_structure():
    networkx = pytest.importorskip("networkx")
    lattice = CuboidLattice(3)
    graph = lattice.to_networkx()
    assert graph.number_of_nodes() == 8
    # every non-apex cuboid has level edges up
    assert graph.number_of_edges() == sum(m.bit_count() for m in lattice)
    assert networkx.is_directed_acyclic_graph(graph)
