"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.io import read_range_cube_csv, read_table_csv, write_table_csv

from tests.conftest import make_paper_table


def test_generate_zipf_and_stats(tmp_path, capsys):
    table_path = tmp_path / "t.csv"
    assert main([
        "generate", "zipf", "--rows", "200", "--dims", "3", "--card", "10",
        "--out", str(table_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "200 rows x 3 dims" in out
    loaded = read_table_csv(table_path, n_measures=1)
    assert loaded.n_rows == 200

    assert main(["stats", str(table_path), "--measures", "1"]) == 0
    out = capsys.readouterr().out
    assert "range trie" in out
    assert "node ratio" in out


def test_generate_weather(tmp_path, capsys):
    path = tmp_path / "w.csv"
    assert main(["generate", "weather", "--rows", "150", "--out", str(path)]) == 0
    loaded = read_table_csv(path, n_measures=1)
    assert loaded.n_dims == 9


def test_cube_and_query_roundtrip(tmp_path, capsys):
    table_path = tmp_path / "sales.csv"
    write_table_csv(make_paper_table(), table_path)
    cube_path = tmp_path / "cube.csv"
    assert main([
        "cube", str(table_path), "--measures", "1",
        "--order", "as-is", "--out", str(cube_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "33 ranges" in out
    cube = read_range_cube_csv(cube_path)
    assert cube.n_ranges == 33

    # query (store=S1 encodes to code 0)
    assert main(["query", str(cube_path), "--bind", "0=0"]) == 0
    out = capsys.readouterr().out
    assert "'count': 2" in out
    assert "containing range" in out

    # empty cell -> exit code 1
    assert main(["query", str(cube_path), "--bind", "0=2", "--bind", "1=0"]) == 1


def test_cube_with_baseline_algorithms(tmp_path, capsys):
    table_path = tmp_path / "sales.csv"
    write_table_csv(make_paper_table(), table_path)
    for algorithm in ("buc", "hcubing", "star"):
        assert main([
            "cube", str(table_path), "--measures", "1", "--algorithm", algorithm,
        ]) == 0
        assert "69 cells" in capsys.readouterr().out


def test_cube_iceberg(tmp_path, capsys):
    table_path = tmp_path / "sales.csv"
    write_table_csv(make_paper_table(), table_path)
    assert main([
        "cube", str(table_path), "--measures", "1", "--min-support", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "ranges" in out


def test_experiment_dispatch(capsys):
    assert main(["experiment", "fig9", "--preset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9(a)" in out


def test_report_command(tmp_path, capsys):
    out = tmp_path / "r.md"
    assert main(["report", "--preset", "tiny", "--out", str(out)]) == 0
    assert out.read_text().startswith("# Range CUBE reproduction report")


def test_claims_command(capsys, monkeypatch):
    import repro.harness.claims as claims_module
    from repro.harness.claims import ClaimResult

    stub = [ClaimResult("stub", "a stubbed claim", True, "ok")]
    monkeypatch.setattr(claims_module, "run_claims", lambda preset: stub)
    assert main(["claims", "--preset", "tiny"]) == 0
    assert "claims hold" in capsys.readouterr().out


def test_advise_command(tmp_path, capsys):
    table_path = tmp_path / "sales.csv"
    write_table_csv(make_paper_table(), table_path)
    assert main(["advise", str(table_path), "--measures", "1"]) == 0
    out = capsys.readouterr().out
    assert "recommended strategy:" in out
    assert "estimated full-cube size" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
