"""Unit + property tests for the MultiWay array-cubing baseline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.multiway import _encode_rows, multiway, recommended_for
from repro.cube.full_cube import compute_full_cube
from repro.table.aggregates import AvgAggregator, CountAggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_paper_example_matches_oracle():
    table = make_paper_table()
    assert cubes_equal(
        multiway(table).as_dict(), compute_full_cube(table).as_dict()
    )


def test_count_only_aggregator():
    table = make_encoded_table([(0, 1), (0, 1), (1, 0)], n_measures=0)
    cube = multiway(table, aggregator=CountAggregator())
    assert cube.lookup((0, 1)) == (2,)
    assert cube.lookup((None, None)) == (3,)


def test_rich_aggregators_rejected():
    table = make_paper_table()
    with pytest.raises(ValueError):
        multiway(table, aggregator=AvgAggregator())


def test_space_guard():
    table = make_encoded_table([(0, 0), (999, 999)])
    with pytest.raises(ValueError):
        multiway(table, max_cells=1000)


def test_min_support_filter():
    table = make_paper_table()
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(
            multiway(table, min_support=min_support).as_dict(), expected
        )


def test_empty_table():
    schema = Schema.from_names(["a"])
    table = BaseTable(schema, np.zeros((0, 1), dtype=np.int64))
    assert len(multiway(table)) == 0


def test_non_contiguous_codes():
    # codes {0, 5} must not break the dense indexing
    table = make_encoded_table([(0, 5), (5, 0), (5, 5)])
    assert cubes_equal(
        multiway(table).as_dict(), compute_full_cube(table).as_dict()
    )


def test_encode_rows_row_major():
    codes = np.array([[1, 2], [0, 0]])
    assert _encode_rows(codes, [3, 4]).tolist() == [1 * 4 + 2, 0]


def test_recommended_for_dense_only():
    dense = make_encoded_table([(i % 2, i % 3) for i in range(50)])
    assert recommended_for(dense)
    sparse = make_encoded_table([(0, 0), (100000, 99999)])
    assert not recommended_for(sparse, max_cells=1000)


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_matches_oracle_on_random_tables(table):
    assert cubes_equal(
        multiway(table).as_dict(), compute_full_cube(table).as_dict()
    )
