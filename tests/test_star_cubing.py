"""Unit + property tests for the star-cubing baseline."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.star_cubing import STAR_CODE, StarTree, _star_tables, star_cubing
from repro.cube.full_cube import compute_full_cube
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_star_tree_is_htree_without_links():
    table = make_paper_table()
    tree = StarTree.build(table)
    # Same node count as the H-tree of Figure 3(d).
    assert tree.n_nodes() == 20
    assert tree.root.agg[0] == 6


def test_star_tables_keep_frequent_values():
    table = make_encoded_table([(0, 0), (0, 1), (0, 2), (1, 0)])
    keeps = _star_tables(table, min_support=2)
    assert keeps[0] == {0}
    assert keeps[1] == {0}


def test_star_reduction_inserts_star_codes():
    table = make_encoded_table([(0, 0), (0, 1), (0, 2)])
    tree = StarTree.build(table, min_support=2)
    level1 = tree.root.children
    assert set(level1) == {0}
    level2 = level1[0].children
    assert set(level2) == {STAR_CODE}
    assert level2[STAR_CODE].agg[0] == 3


def test_paper_example_matches_oracle():
    table = make_paper_table()
    assert cubes_equal(
        star_cubing(table).as_dict(), compute_full_cube(table).as_dict()
    )


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    assert len(star_cubing(table)) == 0


def test_iceberg_matches_filtered_oracle():
    table = make_paper_table()
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(
            star_cubing(table, min_support=min_support).as_dict(), expected
        )


def test_order_parameter_is_transparent():
    table = make_paper_table()
    oracle = compute_full_cube(table).as_dict()
    for order in [(3, 2, 1, 0), (2, 3, 0, 1)]:
        assert cubes_equal(star_cubing(table, dim_order=order).as_dict(), oracle)


def test_collapse_shares_single_child_subtree():
    # A column with a single value makes the collapse a pure pass-through.
    table = make_encoded_table([(0, 0), (0, 1)])
    oracle = compute_full_cube(table).as_dict()
    assert cubes_equal(star_cubing(table).as_dict(), oracle)


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_matches_oracle_on_random_tables(table):
    assert cubes_equal(
        star_cubing(table).as_dict(), compute_full_cube(table).as_dict()
    )


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_iceberg_property(table):
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(
            star_cubing(table, min_support=min_support).as_dict(), expected
        )
