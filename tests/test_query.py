"""Unit tests for the query layer over materialized and range cubes."""

import pytest

from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube
from repro.cube.query import CubeQuery

from tests.conftest import make_paper_table


@pytest.fixture
def paper_queries():
    table = make_paper_table()
    materialized = compute_full_cube(table)
    ranged = range_cubing(table)
    return table, materialized, ranged


def test_point_query_by_raw_values(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        assert q.point(store="S2")["count"] == 3
        assert q.point(store="S1", product="P1")["sum"] == 100.0
        assert q.point()["count"] == 6  # the apex


def test_point_query_empty_cell_is_none(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        assert q.point(store="S3", city="C1") is None


def test_point_query_unknown_value_is_none(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema, table)
    assert q.point(store="S9") is None


def test_roll_up_walks_toward_apex(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        cell = q.cell_for({"store": "S1", "city": "C1"})
        up, value = q.roll_up(cell, "city")
        assert up == q.cell_for({"store": "S1"})
        assert value["count"] == 2


def test_drill_down_returns_only_nonempty_children(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        cell = q.cell_for({"store": "S3"})
        children = q.drill_down(cell, "city")
        assert len(children) == 1  # S3 only ever sells in C3
        child_cell, value = children[0]
        assert q.decode(child_cell) == ("S3", "C3", None, None)
        assert value["count"] == 1


def test_drill_down_rejects_bound_dim(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema, table)
    with pytest.raises(ValueError):
        q.drill_down(q.cell_for({"store": "S1"}), "store")


def test_slice_covers_all_free_dimensions(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        cell = q.cell_for({"store": "S1"})
        results = q.slice(cell)
        # S1 drills into 1 city, 2 products, 2 dates
        assert len(results) == 5


def test_materialized_and_range_cube_agree_on_all_cells(paper_queries):
    table, materialized, ranged = paper_queries
    for cell, state in materialized.cells():
        assert ranged.lookup(cell) == state


def test_dice_sums_matching_cells(paper_queries):
    table, materialized, ranged = paper_queries
    for cube in (materialized, ranged):
        q = CubeQuery(cube, table.schema, table)
        # stores S1+S2 on date D2: tuples 2, 3, 4, 5 minus S3 -> rows 1,2,3,4
        result = q.dice({"store": ["S1", "S2"], "date": ["D2"]})
        assert result["count"] == 4
        assert result["sum"] == 500.0 + 200.0 + 1200.0 + 400.0


def test_dice_with_unknown_values_skips_them(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema, table)
    result = q.dice({"store": ["S1", "S9"]})
    assert result["count"] == 2
    assert q.dice({"store": ["S9"]}) is None


def test_dice_respects_base_cell(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema, table)
    base = q.cell_for({"product": "P1"})
    result = q.dice({"store": ["S1", "S2"]}, base_cell=base)
    assert result["count"] == 3  # P1 sold once by S1, twice by S2
    with pytest.raises(ValueError):
        q.dice({"product": ["P1"]}, base_cell=base)


def test_dice_empty_combination(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema, table)
    assert q.dice({"store": ["S3"], "city": ["C1"]}) is None


def test_query_without_table_uses_codes(paper_queries):
    table, materialized, _ = paper_queries
    q = CubeQuery(materialized, table.schema)
    assert q.point(store=0)["count"] == 2
    assert q.decode((0, None, None, None)) == (0, None, None, None)
