"""Unit + property tests for shell-fragment cubing."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.shell_fragments import ShellFragmentCube
from repro.cube.full_cube import compute_full_cube, full_cube_size
from repro.cube.lattice import CuboidLattice

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_fragment_partitioning():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    assert shell.fragments == ((0, 1), (2, 3))
    shell3 = ShellFragmentCube(table, fragment_size=3)
    assert shell3.fragments == ((0, 1, 2), (3,))


def test_fragment_size_validated():
    with pytest.raises(ValueError):
        ShellFragmentCube(make_paper_table(), fragment_size=0)


def test_lookup_every_cell_of_the_paper_cube():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert shell.lookup(cell) == state


def test_cross_fragment_cells_need_intersection():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    enc = table.encoder.encoders
    # store (fragment 0) x date (fragment 1)
    cell = (enc[0].encode_existing("S2"), None, None, enc[3].encode_existing("D2"))
    assert shell.lookup(cell)[0] == 3
    tids = shell.tids_for(cell)
    assert sorted(tids.tolist()) == [2, 3, 4]


def test_empty_cells():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    assert shell.lookup((2, 0, None, None)) is None  # within fragment 0
    assert shell.lookup((2, None, 0, None)) is None  # across fragments
    assert shell.tids_for((2, None, 0, None)) is None


def test_apex_covers_everything():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    assert shell.lookup((None,) * 4)[0] == 6
    assert shell.tids_for((None,) * 4).size == 6


def test_wrong_arity_rejected():
    shell = ShellFragmentCube(make_encoded_table([(0, 1)]), fragment_size=1)
    with pytest.raises(ValueError):
        shell.lookup((0,))


def test_storage_is_fraction_of_full_cube_in_high_dims():
    rows = [tuple((i * 5 + d * 3) % 4 for d in range(10)) for i in range(60)]
    table = make_encoded_table(rows)
    shell = ShellFragmentCube(table, fragment_size=2)
    assert shell.n_stored_cells() < full_cube_size(table) / 10


def test_compute_cuboid_matches_oracle():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    oracle = compute_full_cube(table)
    lattice = CuboidLattice(4)
    for mask in (0b0101, 0b1111, 0b0000, 0b0010):
        dims = lattice.dims_of(mask)
        assert shell.compute_cuboid(dims) == oracle.cuboid(mask)
    with pytest.raises(IndexError):
        shell.compute_cuboid([9])


def test_value_finalizes():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    assert shell.value((None,) * 4) == {"count": 6, "sum": 4900.0}
    assert shell.value((2, 0, None, None)) is None


def test_holistic_median_and_mode():
    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=2)
    # median price over all six sales: sorted (100, 200, 400, 500, 1200, 2500)
    assert shell.holistic((None,) * 4, np.median) == pytest.approx(450.0)
    enc = table.encoder.encoders
    s2 = (enc[0].encode_existing("S2"), None, None, None)
    assert shell.holistic(s2, np.median) == pytest.approx(400.0)
    assert shell.holistic(s2, np.max) == 1200.0
    assert shell.holistic((2, 0, None, None), np.median) is None


def test_holistic_matches_direct_computation():
    from repro.cube.cell import matches_row

    table = make_paper_table()
    shell = ShellFragmentCube(table, fragment_size=3)
    rows = table.dim_rows()
    for cell in [(0, None, None, None), (None, 0, 0, None), (None,) * 4]:
        expected = np.median(
            [table.measures[i, 0] for i, r in enumerate(rows) if matches_row(cell, r)]
        )
        assert shell.holistic(cell, np.median) == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=5))
def test_shell_answers_match_oracle(table):
    for fragment_size in (1, 2, 3):
        shell = ShellFragmentCube(table, fragment_size=fragment_size)
        oracle = compute_full_cube(table)
        for cell, state in oracle.cells():
            assert shell.lookup(cell)[0] == state[0]


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_tidlists_are_exact_covers(table):
    from repro.cube.cell import matches_row

    shell = ShellFragmentCube(table, fragment_size=2)
    rows = table.dim_rows()
    oracle = compute_full_cube(table)
    for cell in oracle.iter_cells():
        tids = shell.tids_for(cell)
        expected = [i for i, row in enumerate(rows) if matches_row(cell, row)]
        assert tids.tolist() == expected
