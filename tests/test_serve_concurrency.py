"""Concurrency tests: readers racing a writer must never see torn state.

The engine's contract is that a refresh is one atomic version swap:
every response is computed entirely from the pre-refresh or entirely
from the post-refresh cube, and the cache (whose keys embed the version)
can never serve an old answer for a new version.  These tests hammer
that contract with real threads.
"""

import threading

import numpy as np
import pytest

from repro.serve import InProcessClient, QueryEngine

from tests.conftest import make_encoded_table


def _table(n_rows=150, n_dims=4, cardinality=5, seed=11):
    rng = np.random.default_rng(seed)
    rows = [tuple(int(v) for v in rng.integers(0, cardinality, size=n_dims))
            for _ in range(n_rows)]
    return make_encoded_table(rows)


def _batch(n_rows=40, n_dims=4, cardinality=5, seed=12):
    rng = np.random.default_rng(seed)
    rows = [[int(v) for v in rng.integers(0, cardinality, size=n_dims)]
            for _ in range(n_rows)]
    measures = [[float(v)] for v in rng.uniform(1.0, 100.0, size=n_rows)]
    return rows, measures


def _oracle_values(engine: QueryEngine, cells) -> dict:
    return {cell: engine.point(cell) for cell in cells}


def test_no_torn_reads_across_refresh():
    """Every response during an append matches the pre- OR post-cube oracle."""
    table = _table()
    rows, measures = _batch()

    # Two reference engines give the exact pre- and post-refresh answers.
    cells = []
    rng = np.random.default_rng(13)
    base_rows = table.dim_rows()
    for _ in range(24):
        row = base_rows[int(rng.integers(0, len(base_rows)))]
        n_bound = int(rng.integers(1, table.n_dims + 1))
        bound = rng.choice(table.n_dims, size=n_bound, replace=False)
        cells.append(tuple(
            int(row[d]) if d in set(int(b) for b in bound) else None
            for d in range(table.n_dims)
        ))
    pre_oracle = _oracle_values(QueryEngine.from_table(table), cells)
    post_engine = QueryEngine.from_table(table)
    post_engine.append(rows, measures)
    post_oracle = _oracle_values(post_engine, cells)
    # The batch must actually change something, or the test proves nothing.
    assert any(pre_oracle[c] != post_oracle[c] for c in cells)

    engine = QueryEngine.from_table(table)
    n_readers = 6
    rounds = 150
    start_barrier = threading.Barrier(n_readers + 1)
    torn: list = []

    def reader(seed: int) -> None:
        local_rng = np.random.default_rng(seed)
        client = InProcessClient(engine)
        start_barrier.wait()
        for _ in range(rounds):
            cell = cells[int(local_rng.integers(0, len(cells)))]
            response = client.query({"op": "point", "cell": list(cell)})
            value, version = response["value"], response["version"]
            if version == 0:
                ok = value == pre_oracle[cell]
            else:
                ok = value == post_oracle[cell]
            if not ok:
                torn.append((cell, version, value))

    def writer() -> None:
        start_barrier.wait()
        engine.append(rows, measures)

    threads = [threading.Thread(target=reader, args=(100 + i,))
               for i in range(n_readers)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert torn == []
    assert engine.version == 1
    # After the swap every reader sees the post-refresh cube.
    for cell in cells:
        assert engine.point(cell) == post_oracle[cell]


def test_cache_never_serves_stale_values_across_versions():
    """A hot cached entry must flip to the new answer right after a refresh."""
    table = _table(n_rows=60)
    engine = QueryEngine.from_table(table)
    cell = tuple(int(v) for v in table.dim_rows()[0])
    request = {"op": "point", "cell": list(cell)}
    old = engine.execute(request)
    assert engine.execute(request)["cached"] is True  # hot in the cache
    engine.append([list(cell)], [[1234.5]])
    fresh = engine.execute(request)
    assert fresh["version"] == 1 and fresh["cached"] is False
    assert fresh["value"] != old["value"]


def test_many_appends_under_read_load_stay_sequential():
    """Concurrent appenders serialize: versions count up with no gaps."""
    table = _table(n_rows=80)
    engine = QueryEngine.from_table(table)
    n_writers, batches_each = 4, 3
    versions: list[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_writers)

    def writer(seed: int) -> None:
        rows, measures = _batch(n_rows=5, seed=seed)
        barrier.wait()
        for _ in range(batches_each):
            v = engine.append(rows, measures)
            with lock:
                versions.append(v)

    threads = [threading.Thread(target=writer, args=(50 + i,))
               for i in range(n_writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert sorted(versions) == list(range(1, n_writers * batches_each + 1))
    assert engine.version == n_writers * batches_each
    stats = engine.stats()
    assert stats["rows_absorbed"] == 80 + n_writers * batches_each * 5


@pytest.mark.parametrize("capacity", [0, 8])
def test_readers_agree_under_cache_churn(capacity):
    """With and without a cache, concurrent identical queries agree."""
    table = _table(n_rows=50)
    engine = QueryEngine.from_table(table, cache_capacity=capacity)
    cell = tuple(int(v) for v in table.dim_rows()[0])
    expected = engine.point(cell)
    results: list = []
    barrier = threading.Barrier(8)

    def reader() -> None:
        barrier.wait()
        for _ in range(50):
            results.append(engine.point(cell))

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(value == expected for value in results)
