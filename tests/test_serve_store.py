"""Unit tests for the named cube store (persistence + restart)."""

import pytest

from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube
from repro.data.io import read_range_cube_csv
from repro.serve import CubeStore

from tests.conftest import make_paper_table


@pytest.fixture
def store(tmp_path) -> CubeStore:
    return CubeStore(tmp_path / "cubes")


def test_create_load_round_trip(store):
    table = make_paper_table()
    created = store.create("sales", table)
    assert store.exists("sales") and store.list_cubes() == ["sales"]
    loaded = store.load("sales")
    assert loaded.name == "sales"
    assert loaded.schema.dimension_names == table.schema.dimension_names
    assert list(loaded.schema.cardinalities) == list(table.schema.cardinalities)
    assert loaded.cuber.n_rows_absorbed == 6
    # The re-emitted cube answers exactly like a fresh range cubing.
    cube = loaded.cuber.cube(loaded.min_support)
    fresh = range_cubing(table)
    for cell, state in compute_full_cube(table).cells():
        assert cube.aggregator.finalize(cube.lookup(cell)) == fresh.aggregator.finalize(
            state
        )
    assert created.engine_version == 0 and loaded.engine_version == 0


def test_create_refuses_overwrite_unless_asked(store):
    table = make_paper_table()
    store.create("sales", table)
    with pytest.raises(FileExistsError):
        store.create("sales", table)
    store.create("sales", table, overwrite=True)  # explicit opt-in


def test_load_missing_cube_raises(store):
    with pytest.raises(FileNotFoundError):
        store.load("nope")


@pytest.mark.parametrize("name", ["", "../escape", "a/b", ".hidden", "sp ace"])
def test_invalid_names_rejected(store, name):
    with pytest.raises(ValueError):
        store.create(name, make_paper_table())


def test_delete_removes_all_files(store, tmp_path):
    store.create("sales", make_paper_table())
    store.export_csv("sales")
    store.delete("sales")
    assert not store.exists("sales") and store.list_cubes() == []
    assert list((tmp_path / "cubes").iterdir()) == []
    store.delete("sales")  # deleting a missing cube is fine


def test_export_csv_round_trips_the_cube(store):
    table = make_paper_table()
    store.create("sales", table)
    path = store.export_csv("sales")
    cube = read_range_cube_csv(path)
    assert cube.n_ranges == range_cubing(table).n_ranges


def test_open_engine_writes_through_and_survives_restart(store):
    table = make_paper_table()
    store.create("sales", table)
    engine = store.open_engine("sales")
    version = engine.append([[0, 0, 0, 0]], [[900.0]])
    assert version == 1
    value = engine.point((0, 0, 0, 0))

    # A fresh engine over the same store sees the appended state.
    revived = store.open_engine("sales")
    assert revived.version == 1
    assert revived.point((0, 0, 0, 0)) == value
    assert revived.stats()["rows_absorbed"] == 7


def test_open_engine_without_store_name_rejected(store):
    from repro.core.incremental import IncrementalRangeCuber
    from repro.serve import QueryEngine
    from repro.table.aggregates import default_aggregator

    table = make_paper_table()
    cuber = IncrementalRangeCuber(table.n_dims, default_aggregator(1))
    cuber.insert_table(table)
    with pytest.raises(ValueError):
        QueryEngine(cuber, table.schema, store=store)
