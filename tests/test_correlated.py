"""Unit tests for functional-dependency injection."""

import pytest

from repro.core.range_cubing import range_cubing
from repro.data.correlated import (
    FunctionalDependency,
    correlated_table,
    verify_dependency,
)
from repro.data.synthetic import zipf_table


def test_dependency_validation():
    with pytest.raises(ValueError):
        FunctionalDependency((), (1,))
    with pytest.raises(ValueError):
        FunctionalDependency((0,), ())
    with pytest.raises(ValueError):
        FunctionalDependency((0,), (0,))


def test_injected_dependency_holds():
    fd = FunctionalDependency((0,), (1, 2))
    table = correlated_table(500, 4, 20, [fd], seed=3)
    assert verify_dependency(table, fd)


def test_multi_source_dependency_holds():
    fd = FunctionalDependency((0, 1), (3,))
    table = correlated_table(500, 4, 10, [fd], seed=3)
    assert verify_dependency(table, fd)


def test_chained_dependencies_compose():
    fds = [FunctionalDependency((0,), (1,)), FunctionalDependency((1,), (2,))]
    table = correlated_table(500, 3, 15, fds, seed=3)
    for fd in fds:
        assert verify_dependency(table, fd)
    # transitive: 0 -> 2 as well
    assert verify_dependency(table, FunctionalDependency((0,), (2,)))


def test_verify_dependency_detects_violation():
    table = zipf_table(300, 2, 10, theta=0.0, seed=1)
    assert not verify_dependency(table, FunctionalDependency((0,), (1,)))


def test_dimension_bounds_checked():
    with pytest.raises(IndexError):
        correlated_table(10, 2, 5, [FunctionalDependency((0,), (5,))], seed=1)


def test_zipf_base_supported():
    fd = FunctionalDependency((0,), (1,))
    table = correlated_table(300, 3, 20, [fd], theta=1.5, seed=2)
    assert verify_dependency(table, fd)


def test_correlation_improves_range_compression():
    # The motivating claim: correlation means more shared values in trie
    # nodes, hence fewer ranges for the same cell count.
    plain = zipf_table(400, 4, 15, theta=1.0, seed=9)
    fd = FunctionalDependency((0,), (1, 2))
    correlated = correlated_table(400, 4, 15, [fd], theta=1.0, seed=9)
    ratio_plain = range_cubing(plain).tuple_ratio()
    ratio_correlated = range_cubing(correlated).tuple_ratio()
    assert ratio_correlated < ratio_plain
