"""Unit + property tests for the Dwarf cube structure."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.dwarf import Dwarf
from repro.cube.full_cube import compute_full_cube, full_cube_size
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import uniform_table
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_lookup_every_cell_of_the_paper_cube():
    table = make_paper_table()
    dwarf = Dwarf.build(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert dwarf.lookup(cell) == state


def test_empty_cells_are_none():
    table = make_paper_table()
    dwarf = Dwarf.build(table)
    assert dwarf.lookup((2, 0, None, None)) is None
    assert dwarf.lookup((0, 0, 2, 0)) is None


def test_value_finalizes():
    table = make_paper_table()
    dwarf = Dwarf.build(table)
    assert dwarf.value((None,) * 4) == {"count": 6, "sum": 4900.0}


def test_wrong_arity_rejected():
    dwarf = Dwarf.build(make_encoded_table([(0, 1)]))
    with pytest.raises(ValueError):
        dwarf.lookup((0,))


def test_empty_table():
    schema = Schema.from_names(["a"])
    dwarf = Dwarf.build(BaseTable(schema, np.zeros((0, 1), dtype=np.int64)))
    assert dwarf.root is None
    assert dwarf.lookup((None,)) is None
    assert dwarf.n_nodes() == 0


def test_single_tuple_coalesces_everything():
    # One tuple: at every interior level there is a single value, so every
    # ALL cell coalesces onto it — n_dims - 1 interior nodes, all coalesced.
    table = make_encoded_table([(3, 1, 2)])
    dwarf = Dwarf.build(table)
    assert dwarf.n_nodes() == 3
    assert dwarf.coalesced_all_cells() == 2
    assert dwarf.lookup((3, None, 2)) == dwarf.lookup((3, 1, 2))


def test_suffix_coalescing_shares_identical_tails():
    # Correlated data: d0 determines d1, so for every d0-branch the d1
    # level has a single value and coalesces.
    table = correlated_table(
        300, 3, 12, [FunctionalDependency((0,), (1,))], seed=6
    )
    dwarf = Dwarf.build(table)
    assert dwarf.coalesced_all_cells() > 0
    oracle = compute_full_cube(table)
    for cell, state in list(oracle.cells())[::7]:
        assert dwarf.lookup(cell)[0] == state[0]


def test_stored_cells_below_full_cube_on_correlated_data():
    # Dwarf's wins come from coalescing identical tuple-set suffixes, which
    # correlation multiplies (on small uniform data it can exceed the full
    # cube — the structure stores empty-combination slots the cube omits).
    table = correlated_table(
        300, 3, 12, [FunctionalDependency((0,), (1,))], seed=6
    )
    dwarf = Dwarf.build(table)
    assert dwarf.n_stored_cells() < full_cube_size(table) / 2


def test_memoization_makes_dag_not_tree():
    # The level-2 sub-dwarf over tuple set {row 0} is reachable both via
    # the prefix (0, 4) and via (*, 4); the memo must hand out one node.
    table = make_encoded_table([(0, 4, 9), (1, 5, 9)])
    dwarf = Dwarf.build(table)
    via_bound_prefix = dwarf.root.cells[0].cells[4]
    via_all_prefix = dwarf.root.all_cell.cells[4]
    assert via_bound_prefix is via_all_prefix


@settings(max_examples=40, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_dwarf_answers_match_oracle(table):
    dwarf = Dwarf.build(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert dwarf.lookup(cell)[0] == state[0]


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_dwarf_never_invents_cells(table):
    # probe a few absent cells: codes one past the observed maximum
    dwarf = Dwarf.build(table)
    ghost = tuple(int(table.dim_codes[:, d].max()) + 1 for d in range(table.n_dims))
    assert dwarf.lookup(ghost) is None
