"""Remaining harness surfaces: presets, report columns, percent rendering."""

import pytest

from repro.harness.presets import resolve_preset, standard_main
from repro.harness.report import SPACE_COLUMNS, TIME_COLUMNS, format_table


def test_resolve_preset_returns_a_copy():
    presets = {"tiny": {"n": 1}}
    resolved = resolve_preset(presets, "tiny")
    resolved["n"] = 99
    assert presets["tiny"]["n"] == 1


def test_resolve_preset_unknown_exits_with_choices():
    with pytest.raises(SystemExit) as excinfo:
        resolve_preset({"a": {}, "b": {}}, "c")
    assert "'c'" in str(excinfo.value)


def test_standard_main_parses_algorithm_list(capsys):
    captured = {}

    def fake_run(preset, algorithms):
        captured["preset"] = preset
        captured["algorithms"] = algorithms
        return [{"x": 1}]

    rows = standard_main(
        "test", {"tiny": {}}, fake_run, lambda rows: print("printed"),
        ["--preset", "tiny", "--algorithms", "range, buc"],
    )
    assert captured == {"preset": "tiny", "algorithms": ("range", "buc")}
    assert rows == [{"x": 1}]
    assert "printed" in capsys.readouterr().out


def test_percent_format_rendering():
    text = format_table([{"r": 0.12345}], [("r", "ratio", "pct")])
    assert "12.35%" in text


def test_time_and_space_columns_cover_measure_keys():
    from repro.harness.runner import measure
    from repro.data.synthetic import zipf_table

    row = measure(
        zipf_table(80, 3, 6, theta=1.0, seed=1),
        algorithms=("range", "hcubing", "buc", "star", "multiway"),
    )
    time_keys = {key for key, _, _ in TIME_COLUMNS}
    assert {
        "range_seconds",
        "hcubing_seconds",
        "buc_seconds",
        "star_seconds",
        "multiway_seconds",
    } <= time_keys
    assert all(key in row for key in time_keys)
    space_keys = {key for key, _, _ in SPACE_COLUMNS}
    assert {"tuple_ratio", "node_ratio"} <= space_keys


def test_format_table_with_no_rows():
    text = format_table([], [("a", "A", "d")])
    assert "A" in text  # header still renders
