"""Unit tests for repro.table.base_table."""

import numpy as np
import pytest

from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table


def test_from_rows_encodes_and_tracks_cardinalities():
    table = make_paper_table()
    assert table.n_rows == 6
    assert table.n_dims == 4
    assert table.n_measures == 1
    # stores S1..S3, cities C1..C3, products P1..P3, dates D1..D2
    assert table.cardinalities == (3, 3, 3, 2)


def test_from_rows_with_inline_measures():
    schema = Schema.from_names(["a"], ["m"])
    table = BaseTable.from_rows(schema, [("x", 1.5), ("y", 2.5)])
    assert table.measures[:, 0].tolist() == [1.5, 2.5]


def test_from_rows_with_separate_measures():
    schema = Schema.from_names(["a"], ["m"])
    table = BaseTable.from_rows(schema, [("x",), ("y",)], measures=[(1.0,), (2.0,)])
    assert table.measures[:, 0].tolist() == [1.0, 2.0]


def test_from_encoded_infers_cardinalities():
    table = make_encoded_table([(0, 2), (1, 0)])
    assert table.cardinalities == (2, 3)


def test_dim_rows_are_int_tuples():
    table = make_encoded_table([(0, 1), (1, 0)])
    rows = table.dim_rows()
    assert rows == [(0, 1), (1, 0)]
    assert all(isinstance(v, int) for row in rows for v in row)


def test_negative_codes_rejected():
    schema = Schema.from_names(["a"])
    with pytest.raises(ValueError):
        BaseTable(schema, np.array([[-1]]))


def test_shape_validation():
    schema = Schema.from_names(["a", "b"], ["m"])
    with pytest.raises(ValueError):
        BaseTable(schema, np.zeros((2, 3), dtype=np.int64))
    with pytest.raises(ValueError):
        BaseTable(schema, np.zeros((2, 2), dtype=np.int64), np.zeros((3, 1)))


def test_distinct_counts():
    table = make_encoded_table([(0, 0), (0, 1), (0, 0)])
    assert table.distinct_count(0) == 1
    assert table.distinct_count(1) == 2
    assert table.distinct_tuple_count() == 2


def test_density():
    table = make_encoded_table([(0, 0), (1, 1)])
    # 2 distinct tuples in a 2x2 space
    assert table.density() == pytest.approx(0.5)


def test_reordered_permutes_columns_and_schema():
    table = make_paper_table()
    reordered = table.reordered([3, 2, 1, 0])
    assert reordered.schema.dimension_names == ("date", "product", "city", "store")
    assert reordered.dim_codes[:, 0].tolist() == table.dim_codes[:, 3].tolist()
    assert reordered.measures.tolist() == table.measures.tolist()


def test_with_cardinality_descending_dims():
    table = make_encoded_table([(0, 0, 0), (0, 1, 1), (0, 2, 1)])
    reordered, order = table.with_cardinality_descending_dims()
    assert order == (1, 2, 0)
    assert reordered.distinct_count(0) == 3


def test_head_decodes_when_encoder_present():
    table = make_paper_table()
    assert table.head(1) == [("S1", "C1", "P1", "D1")]


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    assert table.n_rows == 0
    assert table.distinct_count(0) == 0
    assert table.distinct_tuple_count() == 0


def test_repr_mentions_names():
    table = make_paper_table()
    assert "store" in repr(table)
    assert "price" in repr(table)
