"""Determinism tests for the parallel partitioned range-cubing engine.

``parallel_range_cubing`` must produce exactly the cube of the serial
algorithm — same set of ranges, identical finalized aggregates — for
every executor backend and partition count, on uniform, Zipf-skewed and
correlated data.  Measures are truncated to integers so aggregate states
compare exactly regardless of summation order (float addition is not
associative; the partitioned merge associates differently than the serial
row-by-row insertion).
"""

import pickle

import numpy as np
import pytest

from repro.core.partitioned import (
    build_trie_partition,
    parallel_range_cubing,
    parallel_range_cubing_detailed,
    partition_payloads,
    tree_merge_tries,
)
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import uniform_table, zipf_table
from repro.table.aggregates import SumCountAggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_paper_table
from tests.test_range_trie import snapshot

EXECUTORS = ("serial", "thread", "process")
AGG = SumCountAggregator(0)


def _integer_measures(table: BaseTable) -> BaseTable:
    """Truncate measures to integer-valued floats: exact float sums."""
    return BaseTable(table.schema, table.dim_codes, np.floor(table.measures * 100))


def _generators():
    yield "uniform", _integer_measures(uniform_table(300, 4, 8, seed=11))
    yield "zipf", _integer_measures(zipf_table(300, 4, 12, theta=1.5, seed=12))
    yield (
        "correlated",
        _integer_measures(
            correlated_table(
                300, 4, 8, [FunctionalDependency((0,), (1,))], seed=13
            )
        ),
    )


def _range_set(cube):
    return {(r.specific, r.mask, r.state) for r in cube}


def _finalized(cube):
    return {
        (r.specific, r.mask): tuple(sorted(cube.aggregator.finalize(r.state).items()))
        for r in cube
    }


TABLES = dict(_generators())


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("n_partitions", (1, 2, 4))
@pytest.mark.parametrize("generator", sorted(TABLES))
def test_matches_serial_range_cubing(executor, n_partitions, generator):
    table = TABLES[generator]
    serial = range_cubing(table, aggregator=AGG)
    parallel = parallel_range_cubing(
        table, executor=executor, n_partitions=n_partitions, aggregator=AGG
    )
    assert _range_set(parallel) == _range_set(serial)
    assert _finalized(parallel) == _finalized(serial)


@pytest.mark.parametrize("generator", sorted(TABLES))
def test_byte_identical_across_executors(generator):
    # Same partition count on every backend -> the very same merge
    # sequence -> identical trie -> identical range order, byte for byte.
    table = TABLES[generator]
    dumps = [
        pickle.dumps(
            [
                (r.specific, r.mask, r.state)
                for r in parallel_range_cubing(
                    table, executor=executor, n_partitions=4, aggregator=AGG
                )
            ]
        )
        for executor in EXECUTORS
    ]
    assert dumps[0] == dumps[1] == dumps[2]


@pytest.mark.parametrize("executor", EXECUTORS)
def test_dim_order_and_min_support(executor):
    table = TABLES["zipf"]
    order = (3, 1, 0, 2)
    serial = range_cubing(table, dim_order=order, min_support=4)
    parallel = parallel_range_cubing(
        table, executor=executor, n_partitions=3, dim_order=order, min_support=4
    )
    assert _range_set(parallel) == _range_set(serial)


def test_stage_stats_reported():
    cube, stats = parallel_range_cubing_detailed(
        make_paper_table(), executor="serial", n_partitions=2
    )
    for key in ("partition_s", "build_s", "merge_s", "cube_s", "total_seconds"):
        assert stats[key] >= 0.0
    assert stats["n_partitions"] == 2
    assert stats["tries_merged"] == 2
    assert stats["trie_nodes"] > 0
    assert stats["executor"] == "serial"
    assert stats["workers"] >= 1


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    cube, stats = parallel_range_cubing_detailed(table, executor="serial")
    assert cube.n_ranges == 0
    assert stats["tries_merged"] == 0


def test_invalid_partition_count():
    with pytest.raises(ValueError):
        parallel_range_cubing(make_paper_table(), n_partitions=0)


def test_tree_merge_equals_monolithic():
    table = _integer_measures(zipf_table(400, 4, 10, theta=1.2, seed=5))
    monolithic = RangeTrie.build(table, AGG)
    for n_parts in (1, 2, 3, 5, 8):
        tries = [
            build_trie_partition(p) for p in partition_payloads(table, n_parts, AGG)
        ]
        merged = tree_merge_tries(tries)
        assert snapshot(merged.root) == snapshot(monolithic.root)
        merged.check_invariants()
    with pytest.raises(ValueError):
        tree_merge_tries([])


def test_trie_pickle_roundtrip():
    trie = RangeTrie.build(make_paper_table(), AGG)
    clone = pickle.loads(pickle.dumps(trie))
    assert snapshot(clone.root) == snapshot(trie.root)
    assert clone.n_dims == trie.n_dims
    clone.check_invariants()


def test_worker_task_builds_from_arrays():
    table = make_paper_table()
    (payload,) = partition_payloads(table, 1, AGG)
    dim_codes, measures, agg = payload
    assert isinstance(dim_codes, np.ndarray) and isinstance(measures, np.ndarray)
    assert agg is AGG
    trie = build_trie_partition(payload)
    assert snapshot(trie.root) == snapshot(RangeTrie.build(table, AGG).root)
