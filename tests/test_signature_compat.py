"""Legacy call styles keep working (with DeprecationWarning) after the
signature unification.

Every entrypoint now takes its tuning parameters keyword-only as
``aggregator`` / ``dim_order`` / ``min_support``; ``repro.compat``'s shim
accepts the old positional style and the pre-rename ``order=`` keyword.
"""

import warnings

import pytest

from repro.baselines.buc import buc
from repro.baselines.condensed import condensed_cube
from repro.baselines.hcubing import h_cubing
from repro.baselines.multiway import multiway
from repro.baselines.star_cubing import star_cubing
from repro.compat import legacy_call_shim, reset_legacy_warnings
from repro.core.range_cubing import range_cubing
from repro.table.aggregates import SumCountAggregator

from tests.conftest import make_paper_table

AGG = SumCountAggregator(0)


@pytest.fixture(autouse=True)
def _fresh_deprecation_warnings():
    # The shim warns once per (function, style) per process; re-arm it so
    # every test observes its own warning.
    reset_legacy_warnings()
    yield
    reset_legacy_warnings()


def _deprecated(fn, *args, **kwargs):
    """Run fn asserting exactly one DeprecationWarning; return its result."""
    with pytest.warns(DeprecationWarning):
        return fn(*args, **kwargs)


def test_range_cubing_legacy_positional_args():
    table = make_paper_table()
    modern = range_cubing(table, aggregator=AGG, dim_order=(3, 2, 1, 0), min_support=2)
    legacy = _deprecated(range_cubing, table, AGG, (3, 2, 1, 0), 2)
    assert {(r.specific, r.mask, r.state) for r in legacy} == {
        (r.specific, r.mask, r.state) for r in modern
    }


def test_range_cubing_order_keyword_renamed():
    table = make_paper_table()
    modern = range_cubing(table, dim_order=(1, 0, 3, 2))
    with pytest.warns(DeprecationWarning, match="renamed"):
        legacy = range_cubing(table, order=(1, 0, 3, 2))
    assert {(r.specific, r.mask) for r in legacy} == {
        (r.specific, r.mask) for r in modern
    }


def test_baselines_accept_legacy_positional_args():
    table = make_paper_table()
    assert _deprecated(buc, table, AGG).as_dict() == buc(table, aggregator=AGG).as_dict()
    assert (
        _deprecated(star_cubing, table, AGG, (3, 2, 1, 0)).as_dict()
        == star_cubing(table, aggregator=AGG, dim_order=(3, 2, 1, 0)).as_dict()
    )
    assert (
        _deprecated(h_cubing, table, AGG, None, 2).as_dict()
        == h_cubing(table, aggregator=AGG, min_support=2).as_dict()
    )
    assert (
        _deprecated(multiway, table, AGG).as_dict()
        == multiway(table, aggregator=AGG).as_dict()
    )


def test_baselines_accept_order_keyword():
    table = make_paper_table()
    with pytest.warns(DeprecationWarning, match="renamed"):
        legacy = condensed_cube(table, order=(2, 0, 3, 1))
    modern = condensed_cube(table, dim_order=(2, 0, 3, 1))
    assert dict(legacy.expand()) == dict(modern.expand())


def test_modern_calls_emit_no_warnings():
    table = make_paper_table()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        range_cubing(table, aggregator=AGG, dim_order=(0, 1, 2, 3), min_support=1)
        buc(table, min_support=2)
        h_cubing(table, dim_order=(0, 1, 2, 3))


def test_legacy_style_warns_once_per_process():
    table = make_paper_table()
    with pytest.warns(DeprecationWarning):
        range_cubing(table, AGG)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second legacy call: already warned
        range_cubing(table, AGG)
    reset_legacy_warnings()
    with pytest.warns(DeprecationWarning):
        range_cubing(table, AGG)


def test_conflicting_positional_and_keyword_raises():
    table = make_paper_table()
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="multiple values"):
            range_cubing(table, AGG, aggregator=AGG)


def test_conflicting_order_and_dim_order_raises():
    table = make_paper_table()
    with pytest.raises(TypeError, match="replacement"):
        range_cubing(table, order=(0, 1, 2, 3), dim_order=(0, 1, 2, 3))


def test_too_many_positional_args_raises():
    table = make_paper_table()
    with pytest.raises(TypeError, match="positional argument"):
        range_cubing(table, AGG, (0, 1, 2, 3), 1, "extra")


def test_shim_maps_positionals_in_declared_order():
    @legacy_call_shim("aggregator", "dim_order", "min_support")
    def cube(table, *, aggregator=None, dim_order=None, min_support=1):
        return (aggregator, dim_order, min_support)

    with pytest.warns(DeprecationWarning, match="positionally"):
        assert cube("t", "a", (1, 0)) == ("a", (1, 0), 1)
    assert cube("t", dim_order=(1, 0)) == (None, (1, 0), 1)


def test_shim_leaves_declared_order_keyword_alone():
    # A function whose *new* signature legitimately declares ``order=``
    # must not have it renamed out from under it.
    @legacy_call_shim()
    def ranked(table, *, order="asc"):
        return order

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert ranked("t", order="desc") == "desc"
