"""Unit + property tests for complex-measure (AVG) iceberg cubing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complex_measures import (
    TopKAvgAggregator,
    avg_iceberg_bruteforce,
    avg_iceberg_range_cubing,
)

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_topk_aggregator_state_algebra():
    agg = TopKAvgAggregator(k=2)
    a = agg.state_from_row((10.0,))
    b = agg.state_from_row((4.0,))
    c = agg.state_from_row((7.0,))
    merged = agg.merge(agg.merge(a, b), c)
    assert merged[0] == 3
    assert merged[1] == 21.0
    assert merged[2] == (10.0, 7.0)  # bounded at k=2, largest kept
    assert agg.top_k_avg(merged) == pytest.approx(8.5)
    assert agg.exact_avg(merged) == pytest.approx(7.0)


def test_topk_merge_is_order_insensitive():
    agg = TopKAvgAggregator(k=3)
    states = [agg.state_from_row((float(v),)) for v in (5, 1, 9, 3, 7)]
    left = states[0]
    for s in states[1:]:
        left = agg.merge(left, s)
    right = states[-1]
    for s in reversed(states[:-1]):
        right = agg.merge(s, right)
    assert left == right


def test_k_validation():
    with pytest.raises(ValueError):
        TopKAvgAggregator(k=0)
    with pytest.raises(ValueError):
        avg_iceberg_range_cubing(make_paper_table(), min_count=0, min_avg=1.0)


def test_finalize_reports_both_averages():
    agg = TopKAvgAggregator(k=1)
    state = agg.merge(agg.state_from_row((2.0,)), agg.state_from_row((8.0,)))
    result = agg.finalize(state)
    assert result["avg"] == 5.0
    assert result["top_k_avg"] == 8.0


def test_paper_table_avg_iceberg():
    table = make_paper_table()
    # cells averaging at least $600 over at least 2 sales
    cube = avg_iceberg_range_cubing(table, min_count=2, min_avg=600.0)
    expected = avg_iceberg_bruteforce(table, 2, 600.0)
    expanded = {cell: (s[0], s[1]) for cell, s in cube.expand()}
    assert expanded.keys() == expected.keys()
    for cell, (count, total) in expanded.items():
        assert (count, total) == pytest.approx(expected[cell])


def test_nonmonotone_average_is_not_missed():
    # The group (0, *) averages 50.5 — below a threshold of 60 — but its
    # subgroup (0, 1) averages 100: pruning on the *exact* average would
    # lose the subgroup; the top-k test keeps the branch alive.
    table = make_encoded_table(
        [(0, 0), (0, 0), (0, 1), (0, 1)],
        measures=[(1.0,), (1.0,), (100.0,), (100.0,)],
    )
    cube = avg_iceberg_range_cubing(table, min_count=2, min_avg=60.0)
    cells = dict(cube.expand())
    assert (0, 1) in cells
    assert (None, 1) in cells
    assert (0, None) not in cells  # the low-average parent itself fails
    expected = avg_iceberg_bruteforce(table, 2, 60.0)
    assert cells.keys() == expected.keys()


def test_high_threshold_empties_cube():
    table = make_paper_table()
    cube = avg_iceberg_range_cubing(table, min_count=1, min_avg=10_000.0)
    assert cube.n_ranges == 0


def test_count_one_degenerates_to_max_threshold():
    table = make_paper_table()
    cube = avg_iceberg_range_cubing(table, min_count=1, min_avg=2500.0)
    expected = avg_iceberg_bruteforce(table, 1, 2500.0)
    assert {c for c, _ in cube.expand()} == expected.keys()


@settings(max_examples=40, deadline=None)
@given(
    table_strategy(max_rows=16, max_dims=4),
    st.integers(1, 4),
    st.integers(0, 40),
)
def test_avg_iceberg_matches_bruteforce(table, min_count, min_avg):
    cube = avg_iceberg_range_cubing(table, min_count, float(min_avg))
    expected = avg_iceberg_bruteforce(table, min_count, float(min_avg))
    expanded = {cell: (s[0], s[1]) for cell, s in cube.expand()}
    assert expanded.keys() == expected.keys()
    for cell in expanded:
        assert expanded[cell][0] == expected[cell][0]
        assert expanded[cell][1] == pytest.approx(expected[cell][1])
