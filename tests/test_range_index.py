"""Unit tests for the range-cube point-query index."""

import pytest
from hypothesis import given, settings

from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_every_cell_found_in_its_unique_range():
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    for r in cube:
        for cell in r.cells():
            assert index.find(cell) is r


def test_empty_cells_return_none():
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    assert index.find((2, 0, None, None)) is None  # S3 never sells in C1
    assert index.find((0, 0, 2, 0)) is None


def test_index_length_counts_all_ranges():
    table = make_paper_table()
    cube = range_cubing(table)
    assert len(RangeCubeIndex(cube)) == cube.n_ranges


def test_wrong_arity_rejected():
    cube = range_cubing(make_encoded_table([(0, 1)]))
    index = RangeCubeIndex(cube)
    with pytest.raises(ValueError):
        index.find((0,))


def test_lazy_index_on_cube_lookup():
    table = make_paper_table()
    cube = range_cubing(table)
    assert cube._index is None
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert cube.lookup(cell) == state
    assert cube._index is not None


def test_range_of_returns_containing_range():
    table = make_paper_table()
    cube = range_cubing(table)
    enc = table.encoder.encoders
    cell = (enc[0].encode_existing("S1"), None, None, None)
    r = cube.range_of(cell)
    assert r is not None and r.contains(cell)
    assert cube.range_of((2, 0, None, None)) is None


def test_scan_fallback_for_wide_cells(monkeypatch):
    import repro.core.range_index as range_index_module

    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 1)
    found = index.find((0, 0, 0, 0))
    assert found is not None and found.contains((0, 0, 0, 0))
    assert index.find((2, 0, 1, 1)) is None


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_index_agrees_with_oracle(table):
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        found = index.find(cell)
        assert found is not None
        assert found.state == state
