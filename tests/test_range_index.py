"""Unit tests for the range-cube point-query index."""

import pytest
from hypothesis import given, settings

from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_every_cell_found_in_its_unique_range():
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    for r in cube:
        for cell in r.cells():
            assert index.find(cell) is r


def test_empty_cells_return_none():
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    assert index.find((2, 0, None, None)) is None  # S3 never sells in C1
    assert index.find((0, 0, 2, 0)) is None


def test_index_length_counts_all_ranges():
    table = make_paper_table()
    cube = range_cubing(table)
    assert len(RangeCubeIndex(cube)) == cube.n_ranges


def test_wrong_arity_rejected():
    cube = range_cubing(make_encoded_table([(0, 1)]))
    index = RangeCubeIndex(cube)
    with pytest.raises(ValueError):
        index.find((0,))


def test_lazy_index_on_cube_lookup():
    table = make_paper_table()
    cube = range_cubing(table)
    assert cube._index is None
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert cube.lookup(cell) == state
    assert cube._index is not None


def test_range_of_returns_containing_range():
    table = make_paper_table()
    cube = range_cubing(table)
    enc = table.encoder.encoders
    cell = (enc[0].encode_existing("S1"), None, None, None)
    r = cube.range_of(cell)
    assert r is not None and r.contains(cell)
    assert cube.range_of((2, 0, None, None)) is None


def test_scan_fallback_for_wide_cells(monkeypatch):
    import repro.core.range_index as range_index_module

    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 1)
    found = index.find((0, 0, 0, 0))
    assert found is not None and found.contains((0, 0, 0, 0))
    assert index.find((2, 0, 1, 1)) is None
    assert index.scan_fallbacks == 2


def _wide_table(n_dims: int):
    """A tiny table whose dimensionality exceeds MAX_PROBE_DIMS."""
    rows = [
        tuple(i % 2 for i in range(n_dims)),
        tuple((i + 1) % 2 for i in range(n_dims)),
        tuple(0 for _ in range(n_dims)),
    ]
    return make_encoded_table(rows)


def test_boundary_at_max_probe_dims():
    """Cells binding MAX_PROBE_DIMS and more degrade to the scan, not an error."""
    from repro.core.range_index import MAX_PROBE_DIMS

    n_dims = MAX_PROBE_DIMS + 2
    table = _wide_table(n_dims)
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    row = table.dim_rows()[0]
    for n_bound in (MAX_PROBE_DIMS - 1, MAX_PROBE_DIMS, MAX_PROBE_DIMS + 1, n_dims):
        cell = tuple(row[i] if i < n_bound else None for i in range(n_dims))
        found = index.find(cell)
        assert found is not None and found.contains(cell)
    assert index.scan_fallbacks > 0
    # A wide cell no tuple matches resolves to None, still without probing.
    ghost = tuple(5 for _ in range(n_dims))
    assert index.find(ghost) is None


def test_adaptive_scan_when_probes_exceed_ranges():
    """Even narrow-by-MAX_PROBE_DIMS cells scan once 2**m dwarfs the cube."""
    table = make_encoded_table([(0, 1, 0, 1, 0, 1, 0, 1)])
    cube = range_cubing(table)  # a single-row cube has very few ranges
    index = RangeCubeIndex(cube)
    cell = table.dim_rows()[0]
    assert (1 << 8) > 4 * cube.n_ranges
    found = index.find(cell)
    assert found is not None and found.contains(cell)
    assert index.scan_fallbacks == 1


def test_scan_and_probe_paths_agree(monkeypatch):
    import repro.core.range_index as range_index_module

    table = make_paper_table()
    cube = range_cubing(table)
    probed = RangeCubeIndex(cube)
    scanned = RangeCubeIndex(cube)
    monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 0)
    oracle = compute_full_cube(table)
    for cell, _ in oracle.cells():
        monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 24)
        via_probe = probed.find(cell)
        monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 0)
        assert scanned.find(cell) is via_probe


def test_concurrent_first_lookup_builds_index_once(monkeypatch):
    """The lazy index build is guarded: N racing readers construct it once."""
    import threading

    import repro.core.range_index as range_index_module

    table = make_paper_table()
    cube = range_cubing(table)
    builds = []
    real_index = RangeCubeIndex

    class CountingIndex(real_index):
        def __init__(self, cube):
            builds.append(threading.get_ident())
            super().__init__(cube)

    monkeypatch.setattr(range_index_module, "RangeCubeIndex", CountingIndex)
    n_threads = 12
    barrier = threading.Barrier(n_threads)
    results = []

    def reader():
        barrier.wait()
        results.append(cube.lookup((0, None, None, None)))

    threads = [threading.Thread(target=reader) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(builds) == 1
    assert len(results) == n_threads and len(set(map(id, results))) == 1


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_index_agrees_with_oracle(table):
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        found = index.find(cell)
        assert found is not None
        assert found.state == state
