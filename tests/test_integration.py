"""Integration tests: whole-pipeline agreement at moderate scale.

These go beyond the unit oracles: every algorithm on the same realistic
(Zipf / correlated / weather) inputs, through IO round-trips and the query
layer, at sizes where the structures actually branch and restructure.
"""

import pytest

from repro.baselines.buc import buc
from repro.baselines.condensed import condensed_cube
from repro.baselines.hcubing import h_cubing
from repro.baselines.quotient import quotient_cube
from repro.baselines.star_cubing import star_cubing
from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube, full_cube_size
from repro.cube.query import CubeQuery
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.io import read_range_cube_csv, write_range_cube_csv
from repro.data.synthetic import zipf_table
from repro.data.weather import weather_table

from tests.conftest import cubes_equal


@pytest.fixture(scope="module")
def datasets():
    return {
        "zipf": zipf_table(400, 5, 12, theta=1.5, seed=21),
        "correlated": correlated_table(
            400, 5, 12, [FunctionalDependency((0,), (1,))], theta=1.0, seed=21
        ),
        "weather": weather_table(300, seed=21),
    }


@pytest.mark.parametrize("name", ["zipf", "correlated", "weather"])
def test_all_algorithms_compute_the_same_cube(datasets, name):
    table = datasets[name]
    oracle = compute_full_cube(table).as_dict()
    assert cubes_equal(dict(range_cubing(table).expand()), oracle)
    assert cubes_equal(h_cubing(table).as_dict(), oracle)
    assert cubes_equal(buc(table).as_dict(), oracle)
    assert cubes_equal(star_cubing(table).as_dict(), oracle)
    assert cubes_equal(dict(condensed_cube(table).expand()), oracle)


@pytest.mark.parametrize("name", ["zipf", "correlated"])
def test_all_algorithms_agree_under_reordering(datasets, name):
    table = datasets[name]
    order = tuple(reversed(range(table.n_dims)))
    oracle = compute_full_cube(table).as_dict()
    assert cubes_equal(dict(range_cubing(table, dim_order=order).expand()), oracle)
    assert cubes_equal(h_cubing(table, dim_order=order).as_dict(), oracle)
    assert cubes_equal(buc(table, dim_order=order).as_dict(), oracle)
    assert cubes_equal(star_cubing(table, dim_order=order).as_dict(), oracle)


@pytest.mark.parametrize("min_support", [2, 5, 20])
def test_iceberg_agreement_across_algorithms(datasets, min_support):
    table = datasets["zipf"]
    expected = compute_full_cube(table, min_support=min_support).as_dict()
    assert cubes_equal(
        dict(range_cubing(table, min_support=min_support).expand()), expected
    )
    assert cubes_equal(h_cubing(table, min_support=min_support).as_dict(), expected)
    assert cubes_equal(buc(table, min_support=min_support).as_dict(), expected)
    assert cubes_equal(star_cubing(table, min_support=min_support).as_dict(), expected)


def test_compression_ordering_holds(datasets):
    # quotient (optimal) <= range cube <= full cube; all exact.
    for table in datasets.values():
        cube = range_cubing(table)
        classes = quotient_cube(table).n_classes
        full = full_cube_size(table)
        assert classes <= cube.n_ranges <= full
        assert cube.n_cells == full


def test_cube_survives_io_and_answers_queries(tmp_path, datasets):
    table = datasets["weather"]
    cube = range_cubing(table)
    path = tmp_path / "weather_cube.csv"
    write_range_cube_csv(cube, path, table.schema.dimension_names)
    loaded = read_range_cube_csv(path)
    query = CubeQuery(loaded, table.schema, table)
    oracle = compute_full_cube(table)
    # spot-check one cell per station code
    stations = sorted(set(table.dim_column(0).tolist()))[:10]
    for station in stations:
        cell = (station,) + (None,) * (table.n_dims - 1)
        assert loaded.lookup(cell)[0] == oracle.lookup(cell)[0]
        assert query.point(station_id=station)["count"] == oracle.lookup(cell)[0]


def test_weather_correlation_is_exploited(datasets):
    # The station -> (longitude, latitude) FD must show up as compression:
    # far fewer ranges than cells.
    table = datasets["weather"]
    cube = range_cubing(table, dim_order=tuple(range(table.n_dims)))
    assert cube.tuple_ratio() < 0.5
