"""Unit tests for the simulated weather dataset."""

import numpy as np

from repro.data.correlated import FunctionalDependency, verify_dependency
from repro.data.weather import (
    ORIGINAL_ROWS,
    ORIGINAL_STATIONS,
    WEATHER_ATTRIBUTES,
    weather_table,
)

STATION, LONGITUDE, SOLAR, LATITUDE = 0, 1, 2, 3
BRIGHTNESS = 8


def test_schema_matches_published_attributes():
    table = weather_table(500, seed=1)
    assert table.schema.dimension_names == tuple(n for n, _ in WEATHER_ATTRIBUTES)
    assert table.n_dims == 9
    assert table.n_measures == 1


def test_station_determines_location():
    # The paper: "the Station Id will always determine the value of
    # Longitude and Latitude."
    table = weather_table(3000, seed=2)
    assert verify_dependency(
        table, FunctionalDependency((STATION,), (LONGITUDE, LATITUDE))
    )


def test_brightness_is_function_of_solar_altitude():
    table = weather_table(3000, seed=2)
    assert verify_dependency(table, FunctionalDependency((SOLAR,), (BRIGHTNESS,)))


def test_station_count_scales_with_rows():
    small = weather_table(1000, seed=1)
    expected = round(ORIGINAL_STATIONS * 1000 / ORIGINAL_ROWS)
    assert small.distinct_count(STATION) <= expected
    assert small.distinct_count(STATION) >= expected // 2  # skew loses a few


def test_explicit_station_count_respected():
    table = weather_table(2000, n_stations=10, seed=1)
    assert table.distinct_count(STATION) <= 10


def test_domains_keep_published_sizes():
    table = weather_table(5000, seed=1)
    cards = dict(WEATHER_ATTRIBUTES)
    for i, (name, _) in enumerate(WEATHER_ATTRIBUTES):
        assert table.dim_codes[:, i].max() < cards[name]


def test_station_activity_is_skewed():
    table = weather_table(5000, seed=3)
    _, counts = np.unique(table.dim_column(STATION), return_counts=True)
    counts = np.sort(counts)[::-1]
    # the busiest station reports far more than the median one
    assert counts[0] > 4 * max(1, int(np.median(counts)))


def test_reproducible_by_seed():
    a = weather_table(500, seed=11)
    b = weather_table(500, seed=11)
    assert np.array_equal(a.dim_codes, b.dim_codes)


def test_measures_look_like_temperatures():
    table = weather_table(500, seed=1)
    assert table.measures.min() >= -40.0
    assert table.measures.max() <= 45.0
