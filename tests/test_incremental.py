"""Unit + property tests for incremental range-cube maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalRangeCuber, range_cubing_from_trie
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.cube.full_cube import compute_full_cube
from repro.table.base_table import BaseTable

from tests.conftest import cubes_equal, make_encoded_table, make_paper_table, table_strategy
from tests.test_range_trie import snapshot


def split_table(table: BaseTable, k: int) -> tuple[BaseTable, BaseTable]:
    return (
        BaseTable(table.schema, table.dim_codes[:k], table.measures[:k]),
        BaseTable(table.schema, table.dim_codes[k:], table.measures[k:]),
    )


def test_range_cubing_from_trie_equals_direct():
    table = make_paper_table()
    trie = RangeTrie.build(table)
    direct = range_cubing(table)
    via_trie = range_cubing_from_trie(trie)
    assert cubes_equal(dict(via_trie.expand()), dict(direct.expand()))


def test_incremental_equals_batch_on_paper_table():
    table = make_paper_table()
    first, second = split_table(table, 3)
    cuber = IncrementalRangeCuber(table.n_dims)
    cuber.insert_table(first)
    cuber.insert_table(second)
    assert cuber.n_rows_absorbed == 6
    assert cubes_equal(
        dict(cuber.cube().expand()), compute_full_cube(table).as_dict()
    )


def test_incremental_trie_identical_to_batch_trie():
    # Stronger than cube equality: order invariance makes the resident
    # trie structurally equal to a one-shot load.
    table = make_paper_table()
    first, second = split_table(table, 2)
    cuber = IncrementalRangeCuber(table.n_dims)
    cuber.insert_table(first)
    cuber.insert_table(second)
    assert snapshot(cuber.trie.root) == snapshot(RangeTrie.build(table).root)


def test_insert_row_matches_insert_table():
    table = make_encoded_table([(0, 1), (1, 1), (0, 0)])
    by_table = IncrementalRangeCuber(2)
    by_table.insert_table(table)
    by_row = IncrementalRangeCuber(2)
    for row, measures in table.iter_rows():
        by_row.insert_row(row, measures)
    assert snapshot(by_table.trie.root) == snapshot(by_row.trie.root)
    assert by_row.n_rows_absorbed == 3


def test_cube_can_be_emitted_repeatedly():
    table = make_paper_table()
    cuber = IncrementalRangeCuber(table.n_dims)
    cuber.insert_table(table)
    first = cuber.cube()
    second = cuber.cube()
    assert cubes_equal(dict(first.expand()), dict(second.expand()))
    # emitting a cube must not corrupt the resident trie
    cuber.trie.check_invariants()


def test_iceberg_emission():
    table = make_paper_table()
    cuber = IncrementalRangeCuber(table.n_dims)
    cuber.insert_table(table)
    iceberg = cuber.cube(min_support=3)
    expected = compute_full_cube(table, min_support=3).as_dict()
    assert cubes_equal(dict(iceberg.expand()), expected)


def test_dimension_mismatch_rejected():
    cuber = IncrementalRangeCuber(3)
    with pytest.raises(ValueError):
        cuber.insert_table(make_encoded_table([(0, 1)]))
    with pytest.raises(ValueError):
        cuber.insert_row((0, 1), (1.0,))


def test_trie_nodes_property():
    cuber = IncrementalRangeCuber(4)
    cuber.insert_table(make_paper_table())
    assert cuber.trie_nodes == 8


@settings(max_examples=40, deadline=None)
@given(table_strategy(min_rows=2), st.data())
def test_incremental_equals_batch_property(table, data):
    k = data.draw(st.integers(1, table.n_rows - 1))
    first, second = split_table(table, k)
    cuber = IncrementalRangeCuber(table.n_dims)
    cuber.insert_table(first)
    interim = cuber.cube()
    assert cubes_equal(
        dict(interim.expand()), compute_full_cube(first).as_dict()
    )
    cuber.insert_table(second)
    assert snapshot(cuber.trie.root) == snapshot(RangeTrie.build(table).root)
    assert cubes_equal(
        dict(cuber.cube().expand()), compute_full_cube(table).as_dict()
    )
