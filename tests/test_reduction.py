"""Unit tests for the trie reduction (paper Section 5.1, Figure 6).

The figure tests pin down the exact reduced tries of the running example;
the property test checks the fast merge-based reduction against the
rebuild-from-projection reference, which is canonical because the trie is
insertion-order invariant.
"""

import copy

from hypothesis import given, settings

from repro.core.range_trie import RangeTrie
from repro.core.reduction import rebuild_reduced, reduce_trie
from repro.table.aggregates import SumCountAggregator

from tests.conftest import make_paper_table, table_strategy
from tests.test_range_trie import key, snapshot

STORE, CITY, PRODUCT, DATE = 0, 1, 2, 3
AGG = SumCountAggregator(0)


def reduced_times(n: int):
    """The paper trie reduced ``n`` times (n=1 -> Figure 6(a), etc.)."""
    trie = RangeTrie.build(make_paper_table(), AGG)
    root = trie.root
    for _ in range(n):
        root = reduce_trie(root, AGG.merge)
    return root


def test_figure_6a_city_product_date_trie():
    root = reduced_times(1)
    by_value = {c.start_value: c for c in root.children.values()}
    assert set(by_value) == {0, 1, 2}  # C1, C2, C3

    c1 = by_value[0]
    assert c1.key == key((CITY, 0))
    assert c1.agg[0] == 3
    c1_kids = {c.key: c for c in c1.children.values()}
    assert set(c1_kids) == {key((PRODUCT, 0)), key((PRODUCT, 1), (DATE, 1))}
    p1 = c1_kids[key((PRODUCT, 0))]
    assert p1.agg[0] == 2
    assert {c.key for c in p1.children.values()} == {key((DATE, 0)), key((DATE, 1))}

    c2 = by_value[1]
    assert c2.key == key((CITY, 1), (PRODUCT, 0), (DATE, 1))
    assert c2.is_leaf

    c3 = by_value[2]
    assert c3.key == key((CITY, 2))
    assert c3.agg[0] == 2
    assert {c.key for c in c3.children.values()} == {
        key((PRODUCT, 1), (DATE, 1)),
        key((PRODUCT, 2), (DATE, 0)),
    }


def test_figure_6b_product_date_trie():
    root = reduced_times(2)
    by_value = {c.start_value: c for c in root.children.values()}
    assert set(by_value) == {0, 1, 2}  # P1, P2, P3
    p1 = by_value[0]
    assert p1.key == key((PRODUCT, 0))
    assert p1.agg[0] == 3
    dates = {c.key: c.agg[0] for c in p1.children.values()}
    assert dates == {key((DATE, 0)): 1, key((DATE, 1)): 2}
    assert by_value[1].key == key((PRODUCT, 1), (DATE, 1))
    assert by_value[1].agg[0] == 2
    assert by_value[2].key == key((PRODUCT, 2), (DATE, 0))
    assert by_value[2].agg[0] == 1


def test_figure_6c_date_trie():
    root = reduced_times(3)
    dates = {c.key: c.agg[0] for c in root.children.values()}
    assert dates == {key((DATE, 0),): 2, key((DATE, 1),): 4}


def test_reduction_terminates_with_empty_root():
    root = reduced_times(4)
    assert root.children == {}


def test_reduction_preserves_total_aggregate():
    trie = RangeTrie.build(make_paper_table(), AGG)
    root = trie.root
    for _ in range(4):
        root = reduce_trie(root, AGG.merge)
        assert root.agg[0] == 6


def test_reduction_is_non_destructive():
    trie = RangeTrie.build(make_paper_table(), AGG)
    before = snapshot(trie.root)
    before_deep = copy.deepcopy(
        [(n.key, n.agg) for n in trie.iter_nodes()]
    )
    reduce_trie(trie.root, AGG.merge)
    assert snapshot(trie.root) == before
    assert [(n.key, n.agg) for n in trie.iter_nodes()] == before_deep


def test_reduced_trie_satisfies_invariants():
    # Wrap the reduced root in a RangeTrie to reuse the checker.
    trie = RangeTrie.build(make_paper_table(), AGG)
    reduced = RangeTrie(4, AGG)
    reduced.root = reduce_trie(trie.root, AGG.merge)
    reduced.check_invariants()


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_merge_reduction_equals_rebuild_reference(table):
    trie = RangeTrie.build(table, AGG)
    fast = reduce_trie(trie.root, AGG.merge)
    slow = rebuild_reduced(trie, drop_dim=0, aggregator=AGG)
    assert snapshot(fast) == snapshot(slow.root)


@settings(max_examples=40, deadline=None)
@given(table_strategy(min_dims=2))
def test_iterated_reduction_equals_iterated_rebuild(table):
    trie = RangeTrie.build(table, AGG)
    fast = trie.root
    slow = trie
    for dim in range(table.n_dims):
        fast = reduce_trie(fast, AGG.merge)
        slow = rebuild_reduced(slow, drop_dim=dim, aggregator=AGG)
        assert snapshot(fast) == snapshot(slow.root)
