"""Unit tests for repro.table.aggregates."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.table.aggregates import (
    Aggregator,
    AvgAggregator,
    AvgFunction,
    CountAggregator,
    MaxAggregator,
    MaxFunction,
    MinAggregator,
    MinFunction,
    MultiAggregator,
    SumCountAggregator,
    SumFunction,
    default_aggregator,
)


def fold(agg, rows):
    states = [agg.state_from_row(r) for r in rows]
    total = states[0]
    for s in states[1:]:
        total = agg.merge(total, s)
    return total


def test_count_aggregator():
    agg = CountAggregator()
    total = fold(agg, [()] * 5)
    assert agg.count(total) == 5
    assert agg.finalize(total) == {"count": 5}


def test_sum_count_aggregator():
    agg = SumCountAggregator()
    total = fold(agg, [(1.0,), (2.5,), (3.5,)])
    assert agg.finalize(total) == {"count": 3, "sum": 7.0}


def test_min_max_aggregators():
    rows = [(3.0,), (1.0,), (2.0,)]
    assert MinAggregator().finalize(fold(MinAggregator(), rows))["min"] == 1.0
    assert MaxAggregator().finalize(fold(MaxAggregator(), rows))["max"] == 3.0


def test_avg_aggregator():
    agg = AvgAggregator()
    total = fold(agg, [(1.0,), (2.0,), (6.0,)])
    assert agg.finalize(total)["avg"] == pytest.approx(3.0)


def test_multi_aggregator_over_two_measures():
    agg = MultiAggregator([(SumFunction(), 0), (MaxFunction(), 1)])
    total = fold(agg, [(1.0, 10.0), (2.0, 5.0)])
    result = agg.finalize(total)
    assert result["count"] == 2
    assert result["sum"] == 3.0
    assert result["max"] == 10.0


def test_multi_aggregator_same_function_twice_disambiguates():
    agg = MultiAggregator([(SumFunction(), 0), (SumFunction(), 1)])
    total = fold(agg, [(1.0, 10.0), (2.0, 20.0)])
    result = agg.finalize(total)
    assert result["sum"] == 3.0
    assert result["sum(1)"] == 30.0


def test_default_aggregator_choices():
    assert isinstance(default_aggregator(0), CountAggregator)
    assert isinstance(default_aggregator(2), SumCountAggregator)


def test_result_names():
    assert CountAggregator().result_names() == ("count",)
    assert SumCountAggregator().result_names() == ("count", "sum")


def test_avg_function_algebra():
    f = AvgFunction()
    s = f.merge(f.initial(2.0), f.initial(4.0))
    assert f.finalize(s) == 3.0


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30))
def test_merge_is_associative_for_sum_and_count(values):
    agg = SumCountAggregator()
    rows = [(v,) for v in values]
    states = [agg.state_from_row(r) for r in rows]
    left = states[0]
    for s in states[1:]:
        left = agg.merge(left, s)
    right = states[-1]
    for s in reversed(states[:-1]):
        right = agg.merge(s, right)
    assert left[0] == right[0] == len(values)
    assert math.isclose(left[1], right[1], rel_tol=1e-9, abs_tol=1e-6)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=30))
def test_min_max_match_python_builtins(values):
    rows = [(v,) for v in values]
    assert MinFunction().finalize(fold(MinAggregator(), rows)[1]) == min(values)
    assert MaxFunction().finalize(fold(MaxAggregator(), rows)[1]) == max(values)


def test_generic_aggregator_count_always_first():
    agg = Aggregator([(SumFunction(), 0)])
    state = agg.state_from_row((5.0,))
    assert state[0] == 1
    assert agg.count(agg.merge(state, state)) == 2
