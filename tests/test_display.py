"""Unit tests for the trie rendering helpers."""

from repro.core.display import print_trie, trie_to_dot, trie_to_lines
from repro.core.range_trie import RangeTrie

from tests.conftest import make_paper_table


def build():
    table = make_paper_table()
    return RangeTrie.build(table), table


def test_lines_match_figure_3c():
    trie, table = build()
    lines = trie_to_lines(
        trie, table.schema.dimension_names, table.encoder
    )
    assert lines[0] == "(root):6"
    assert "  (store=S1, city=C1):2" in lines
    assert "  (store=S2, date=D2):3" in lines
    assert "  (store=S3, city=C3, product=P3, date=D1):1" in lines
    assert "    (product=P1, date=D1):1" in lines
    # 1 root + 8 nodes
    assert len(lines) == 9


def test_lines_without_decoder_use_codes():
    trie, _ = build()
    lines = trie_to_lines(trie)
    assert lines[0] == "(root):6"
    assert any("d0=0" in line for line in lines)


def test_lines_are_deterministic():
    trie, table = build()
    assert trie_to_lines(trie) == trie_to_lines(trie)


def test_print_trie_writes_stdout(capsys):
    trie, table = build()
    print_trie(trie, table.schema.dimension_names, table.encoder)
    out = capsys.readouterr().out
    assert "(root):6" in out
    assert "store=S1" in out


def test_dot_output_structure():
    trie, table = build()
    dot = trie_to_dot(trie, table.schema.dimension_names, table.encoder)
    assert dot.startswith("digraph range_trie {")
    assert dot.rstrip().endswith("}")
    # 9 nodes and 8 edges
    assert dot.count("label=") == 9
    assert dot.count("->") == 8
    assert "store=S1, city=C1" in dot


def test_dot_on_empty_trie():
    from repro.table.aggregates import CountAggregator

    trie = RangeTrie(2, CountAggregator())
    dot = trie_to_dot(trie)
    assert "(root):0" in dot
