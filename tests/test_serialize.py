"""Unit + property tests for trie/cuber JSON persistence."""

import json

import pytest
from hypothesis import given, settings

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.core.serialize import (
    load_cuber,
    load_trie,
    save_cuber,
    save_trie,
    trie_from_json,
    trie_to_json,
)
from repro.table.aggregates import Aggregator, SumCountAggregator

from tests.conftest import cubes_equal, make_encoded_table, make_paper_table, table_strategy
from tests.test_range_trie import snapshot

AGG = SumCountAggregator(0)


def test_roundtrip_preserves_structure_and_states():
    table = make_paper_table()
    trie = RangeTrie.build(table, AGG)
    restored = trie_from_json(trie_to_json(trie), AGG)
    assert snapshot(restored.root) == snapshot(trie.root)
    assert restored.total_agg == trie.total_agg
    restored.check_invariants()


def test_restored_trie_produces_identical_cube():
    from repro.core.incremental import range_cubing_from_trie

    table = make_paper_table()
    trie = RangeTrie.build(table, AGG)
    restored = trie_from_json(trie_to_json(trie), AGG)
    assert cubes_equal(
        dict(range_cubing_from_trie(restored).expand()),
        dict(range_cubing(table).expand()),
    )


def test_file_roundtrip(tmp_path):
    table = make_paper_table()
    trie = RangeTrie.build(table, AGG)
    path = tmp_path / "trie.json"
    save_trie(trie, path)
    restored = load_trie(path, AGG)
    assert snapshot(restored.root) == snapshot(trie.root)


def test_empty_trie_roundtrip():
    trie = RangeTrie(3, AGG)
    restored = trie_from_json(trie_to_json(trie), AGG)
    assert restored.root.children == {}
    assert restored.n_dims == 3


def test_wrong_format_rejected():
    with pytest.raises(ValueError):
        trie_from_json(json.dumps({"format": "nope"}), AGG)
    doc = json.loads(trie_to_json(RangeTrie(1, AGG)))
    doc["version"] = 99
    with pytest.raises(ValueError):
        trie_from_json(json.dumps(doc), AGG)


def test_non_numeric_states_rejected():
    class WeirdAggregator(Aggregator):
        def state_from_row(self, measures):
            return (1, object())

        def merge(self, a, b):
            return (a[0] + b[0], a[1])

    table = make_encoded_table([(0,)])
    trie = RangeTrie.build(table, WeirdAggregator())
    with pytest.raises(TypeError):
        trie_to_json(trie)


def test_cuber_roundtrip_continues_absorbing(tmp_path):
    first = make_encoded_table([(0, 1), (1, 0)])
    second = make_encoded_table([(0, 0), (0, 1)])
    cuber = IncrementalRangeCuber(2, AGG)
    cuber.insert_table(first)
    path = tmp_path / "cuber.json"
    save_cuber(cuber, path)

    restored = load_cuber(path, AGG)
    assert restored.n_rows_absorbed == 2
    restored.insert_table(second)

    reference = IncrementalRangeCuber(2, AGG)
    reference.insert_table(first)
    reference.insert_table(second)
    assert snapshot(restored.trie.root) == snapshot(reference.trie.root)


def test_load_cuber_rejects_trie_document(tmp_path):
    path = tmp_path / "trie.json"
    save_trie(RangeTrie(2, AGG), path)
    with pytest.raises(ValueError):
        load_cuber(path, AGG)


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_roundtrip_property(table):
    trie = RangeTrie.build(table, AGG)
    restored = trie_from_json(trie_to_json(trie), AGG)
    assert snapshot(restored.root) == snapshot(trie.root)
    restored.check_invariants()
