"""Unit tests for the H-tree structure (paper Figure 3(d))."""

from hypothesis import given, settings

from repro.baselines.htree import HTree
from repro.table.aggregates import SumCountAggregator

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_figure_3d_node_count():
    # Paper Figure 3(d): the star tree / H-tree of the sales table has one
    # node per (tuple, level) with prefix sharing: S1,S2,S3 / C1,C1,C2,C3,C3
    # / P1,P2,P1,P1,P2,P3 / D1,D2,D2,D2,D2,D1 = 3 + 5 + 6 + 6 = 20 nodes.
    table = make_paper_table()
    tree = HTree.build(table)
    tree.check_invariants()
    assert tree.n_nodes() == 20


def test_prefix_sharing():
    table = make_encoded_table([(0, 0), (0, 1)])
    tree = HTree.build(table)
    # shared first level node, two second level nodes
    assert tree.n_nodes() == 3
    assert tree.root.children[0].agg[0] == 2


def test_header_tables_aggregate_across_branches():
    table = make_paper_table()
    tree = HTree.build(table)
    # city C1 appears under S1 (twice) and S2 (once)
    city_header = tree.headers[1]
    c1 = city_header[0]
    assert c1.agg[0] == 3
    chain = list(c1.chain())
    assert len(chain) == 2  # two tree nodes carry C1
    assert sum(n.agg[0] for n in chain) == 3


def test_side_links_preserve_insertion_structure():
    table = make_paper_table()
    tree = HTree.build(table)
    for dim, header in enumerate(tree.headers):
        for value, entry in header.items():
            for node in entry.chain():
                assert node.value == value


def test_ancestor_values_recover_path():
    table = make_paper_table()
    tree = HTree.build(table)
    date_header = tree.headers[3]
    for entry in date_header.values():
        for node in entry.chain():
            path = node.ancestor_values()
            assert len(path) == 3
            row = (*path, node.value)
            assert row in set(table.dim_rows())


def test_duplicate_rows_share_full_path():
    table = make_encoded_table([(1, 2), (1, 2), (1, 2)])
    tree = HTree.build(table)
    assert tree.n_nodes() == 2
    assert tree.total_agg[0] == 3


def test_insert_weighted_path():
    tree = HTree(2, SumCountAggregator())
    tree.insert((0, 1), (5, 50.0))
    tree.insert((0, 2), (2, 20.0))
    tree.check_invariants()
    assert tree.total_agg == (7, 70.0)
    assert tree.headers[0][0].agg == (7, 70.0)


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_invariants_on_random_tables(table):
    tree = HTree.build(table)
    tree.check_invariants()
    # node count = number of distinct prefixes of all lengths >= 1
    rows = table.dim_rows()
    prefixes = {row[: k + 1] for row in rows for k in range(table.n_dims)}
    assert tree.n_nodes() == len(prefixes)
