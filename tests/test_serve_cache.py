"""Unit tests for the serving layer's LRU result cache."""

import threading

import pytest

from repro.serve import LRUCache


def test_put_get_round_trip():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", "fallback") == "fallback"
    assert len(cache) == 1


def test_eviction_order_is_least_recently_used():
    cache = LRUCache(3)
    for key in "abc":
        cache.put(key, key.upper())
    cache.put("d", "D")  # evicts "a", the oldest
    assert cache.get("a") is None
    assert cache.keys() == ["b", "c", "d"]
    assert cache.stats().evictions == 1


def test_get_refreshes_recency():
    cache = LRUCache(3)
    for key in "abc":
        cache.put(key, key)
    cache.get("a")  # "a" is now most recent; "b" becomes the LRU entry
    cache.put("d", "d")
    assert cache.get("b") is None
    assert cache.get("a") == "a"
    assert cache.keys() == ["c", "d", "a"]


def test_put_existing_key_updates_and_refreshes():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert: nothing evicted
    assert cache.stats().evictions == 0
    cache.put("c", 3)  # now "b" is the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 10


def test_invalidate_all_drops_everything_and_counts():
    cache = LRUCache(8)
    for i in range(5):
        cache.put(i, i)
    assert cache.invalidate_all() == 5
    assert len(cache) == 0
    assert cache.get(3) is None
    stats = cache.stats()
    assert stats.invalidations == 1 and stats.size == 0
    assert cache.invalidate_all() == 0  # idempotent


def test_hit_miss_counters_and_hit_rate():
    cache = LRUCache(4)
    cache.put("x", 1)
    cache.get("x")
    cache.get("x")
    cache.get("y")
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.lookups) == (2, 1, 3)
    assert stats.hit_rate == pytest.approx(2 / 3)
    assert LRUCache(4).stats().hit_rate == 0.0  # no traffic yet


def test_capacity_zero_disables_caching():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.stats().misses == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_capacity_invariant_under_concurrent_churn():
    """Racing readers/writers never push the cache past its capacity."""
    cache = LRUCache(16)
    n_threads, n_ops = 8, 400
    barrier = threading.Barrier(n_threads)

    def churn(seed: int) -> None:
        barrier.wait()
        for i in range(n_ops):
            key = (seed * 31 + i) % 64
            if i % 3 == 0:
                cache.put(key, key)
            else:
                cache.get(key)

    threads = [threading.Thread(target=churn, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) <= 16
    stats = cache.stats()
    assert stats.size == len(cache.keys()) <= 16
