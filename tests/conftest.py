"""Shared fixtures and hypothesis strategies for the test suite.

Hypothesis profiles: ``REPRO_HYPOTHESIS_PROFILE=thorough`` raises the
example budget for release validation and ``=dev`` lowers it while
iterating (tests that pin their own ``max_examples`` keep it — the
profile governs the rest plus deadlines).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

settings.register_profile("default", settings())
settings.register_profile("dev", settings(max_examples=10, deadline=None))
settings.register_profile(
    "thorough", settings(max_examples=300, deadline=None, derandomize=False)
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))

from repro.table.base_table import BaseTable
from repro.table.schema import Schema

#: The paper's running example (Figure 2(a)): the sales base table whose
#: range trie, reductions and ranges the paper draws in Figures 3, 5 and 6.
PAPER_ROWS = [
    ("S1", "C1", "P1", "D1", 100.0),
    ("S1", "C1", "P2", "D2", 500.0),
    ("S2", "C1", "P1", "D2", 200.0),
    ("S2", "C2", "P1", "D2", 1200.0),
    ("S2", "C3", "P2", "D2", 400.0),
    ("S3", "C3", "P3", "D1", 2500.0),
]


def make_paper_table() -> BaseTable:
    schema = Schema.from_names(["store", "city", "product", "date"], ["price"])
    return BaseTable.from_rows(schema, PAPER_ROWS)


@pytest.fixture
def paper_table() -> BaseTable:
    return make_paper_table()


def make_encoded_table(codes, n_measures: int = 1, measures=None) -> BaseTable:
    """Build a table from a list of integer code rows."""
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim == 1:
        codes = codes.reshape(0, 0) if codes.size == 0 else codes.reshape(1, -1)
    n_dims = codes.shape[1]
    schema = Schema.from_names(
        [f"d{i}" for i in range(n_dims)], [f"m{i}" for i in range(n_measures)]
    )
    if measures is None and n_measures:
        measures = np.arange(codes.shape[0] * n_measures, dtype=np.float64).reshape(
            codes.shape[0], n_measures
        )
    return BaseTable.from_encoded(schema, codes, measures)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def table_strategy(
    draw,
    min_rows: int = 1,
    max_rows: int = 24,
    min_dims: int = 1,
    max_dims: int = 5,
    max_card: int = 4,
    n_measures: int = 1,
):
    """Small encoded tables: the oracle (2**n cuboid scan) must stay cheap."""
    n_dims = draw(st.integers(min_dims, max_dims))
    n_rows = draw(st.integers(min_rows, max_rows))
    cards = draw(
        st.lists(st.integers(1, max_card), min_size=n_dims, max_size=n_dims)
    )
    rows = [
        tuple(draw(st.integers(0, cards[d] - 1)) for d in range(n_dims))
        for _ in range(n_rows)
    ]
    measures = [
        tuple(float(draw(st.integers(0, 50))) for _ in range(n_measures))
        for _ in range(n_rows)
    ]
    return make_encoded_table(rows, n_measures=n_measures, measures=measures)


def states_equal(a: tuple, b: tuple, tol: float = 1e-9) -> bool:
    """Compare aggregate states with float tolerance on the sums."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            if abs(x - y) > tol * max(1.0, abs(x), abs(y)):
                return False
        elif x != y:
            return False
    return True


def cubes_equal(a: dict, b: dict, tol: float = 1e-9) -> bool:
    if a.keys() != b.keys():
        return False
    return all(states_equal(a[k], b[k], tol) for k in a)
