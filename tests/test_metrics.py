"""Unit tests for the evaluation metrics."""

import time

import pytest

from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.cube.full_cube import full_cube_size
from repro.metrics.ratios import (
    compression_report,
    node_ratio,
    node_ratio_from_counts,
    tuple_ratio,
)
from repro.metrics.timing import Timer, time_call

from tests.conftest import make_paper_table


def test_tuple_ratio_against_oracle_count():
    table = make_paper_table()
    cube = range_cubing(table)
    assert tuple_ratio(cube) == pytest.approx(33 / 69)
    assert tuple_ratio(cube, full_cube_size(table)) == pytest.approx(33 / 69)


def test_node_ratio_paper_example():
    table = make_paper_table()
    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    # 8 trie nodes vs 20 H-tree nodes (Figures 3(c) vs 3(d))
    assert node_ratio(trie, htree) == pytest.approx(8 / 20)
    assert node_ratio_from_counts(8, 20) == pytest.approx(0.4)


def test_node_ratio_handles_empty():
    assert node_ratio_from_counts(0, 0) == 1.0


def test_compression_report_on_paper_table():
    table = make_paper_table()
    report = compression_report(table)
    assert report.full_cube_cells == 69
    assert report.range_cube_tuples == 33
    assert report.quotient_cube_classes <= report.range_cube_tuples
    assert report.quotient_cube_classes <= report.condensed_cube_tuples
    assert 0 < report.tuple_ratio <= 1
    assert 0 < report.quotient_ratio <= report.tuple_ratio
    rows = report.rows()
    assert rows[0][1] == 69
    assert len(rows) == 4


def test_compression_report_respects_order():
    table = make_paper_table()
    plain = compression_report(table)
    reordered = compression_report(table, order=(3, 2, 1, 0))
    assert reordered.full_cube_cells == plain.full_cube_cells


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.seconds >= 0.009


def test_time_call_returns_result_and_seconds():
    result, seconds = time_call(sum, [1, 2, 3])
    assert result == 6
    assert seconds >= 0
