"""Unit tests for the evaluation metrics."""

import time

import pytest

from repro.baselines.htree import HTree
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.cube.full_cube import full_cube_size
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.ratios import (
    compression_report,
    node_ratio,
    node_ratio_from_counts,
    tuple_ratio,
)
from repro.metrics.timing import Timer, time_call

from tests.conftest import make_paper_table


def test_tuple_ratio_against_oracle_count():
    table = make_paper_table()
    cube = range_cubing(table)
    assert tuple_ratio(cube) == pytest.approx(33 / 69)
    assert tuple_ratio(cube, full_cube_size(table)) == pytest.approx(33 / 69)


def test_node_ratio_paper_example():
    table = make_paper_table()
    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    # 8 trie nodes vs 20 H-tree nodes (Figures 3(c) vs 3(d))
    assert node_ratio(trie, htree) == pytest.approx(8 / 20)
    assert node_ratio_from_counts(8, 20) == pytest.approx(0.4)


def test_node_ratio_handles_empty():
    assert node_ratio_from_counts(0, 0) == 1.0


def test_compression_report_on_paper_table():
    table = make_paper_table()
    report = compression_report(table)
    assert report.full_cube_cells == 69
    assert report.range_cube_tuples == 33
    assert report.quotient_cube_classes <= report.range_cube_tuples
    assert report.quotient_cube_classes <= report.condensed_cube_tuples
    assert 0 < report.tuple_ratio <= 1
    assert 0 < report.quotient_ratio <= report.tuple_ratio
    rows = report.rows()
    assert rows[0][1] == 69
    assert len(rows) == 4


def test_compression_report_respects_order():
    table = make_paper_table()
    plain = compression_report(table)
    reordered = compression_report(table, order=(3, 2, 1, 0))
    assert reordered.full_cube_cells == plain.full_cube_cells


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.seconds >= 0.009


def test_time_call_returns_result_and_seconds():
    result, seconds = time_call(sum, [1, 2, 3])
    assert result == 6
    assert seconds >= 0


def test_latency_histogram_counts_and_mean():
    h = LatencyHistogram()
    for s in (0.001, 0.002, 0.003, 0.010):
        h.record(s)
    assert h.count == 4
    assert h.mean == pytest.approx(0.004)
    assert h.min == 0.001 and h.max == 0.010


def test_latency_histogram_percentiles_bracket_the_samples():
    h = LatencyHistogram()
    samples = [i / 1000 for i in range(1, 101)]  # 1ms..100ms uniform
    for s in samples:
        h.record(s)
    # Geometric buckets with growth 1.25: within ~12% of the exact value.
    assert h.percentile(50) == pytest.approx(0.050, rel=0.13)
    assert h.percentile(95) == pytest.approx(0.095, rel=0.13)
    assert h.percentile(99) == pytest.approx(0.099, rel=0.13)
    assert h.percentile(0) == pytest.approx(h.min, rel=0.13)
    assert h.percentile(100) == pytest.approx(h.max, rel=0.13)
    assert h.percentile(100) <= h.max  # clamped: never overstates the extreme
    assert h.percentile(50) <= h.percentile(95) <= h.percentile(99)


def test_latency_histogram_merge_equals_combined_recording():
    a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for i, s in enumerate(x / 997 for x in range(1, 60)):
        (a if i % 2 else b).record(s)
        combined.record(s)
    a.merge(b)
    assert a.count == combined.count
    assert a.mean == pytest.approx(combined.mean)
    assert (a.min, a.max) == (combined.min, combined.max)
    for p in (50, 90, 95, 99):
        assert a.percentile(p) == combined.percentile(p)


def test_latency_histogram_merge_rejects_different_layouts():
    a = LatencyHistogram()
    b = LatencyHistogram(growth=1.5)
    with pytest.raises(ValueError):
        a.merge(b)


def test_latency_histogram_summary_and_empty_behaviour():
    h = LatencyHistogram()
    assert h.percentile(99) == 0.0
    assert h.mean == 0.0
    assert h.summary() == {
        "count": 0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0,
        "p99_s": 0.0, "max_s": 0.0,
    }
    h.record(0.005)
    summary = h.summary()
    assert summary["count"] == 1
    assert summary["p50_s"] == summary["p99_s"] == 0.005  # clamped to max


def test_latency_histogram_validates_inputs():
    with pytest.raises(ValueError):
        LatencyHistogram(min_latency=0)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    h = LatencyHistogram()
    with pytest.raises(ValueError):
        h.record(-0.001)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_latency_histogram_tiny_samples_land_in_bucket_zero():
    h = LatencyHistogram(min_latency=1e-6)
    h.record(0.0)
    h.record(1e-9)
    assert h.count == 2
    assert h.percentile(99) == h.max  # clamped: never overstates the extreme
