"""The approximate answer tier: sketches, bounds, and the serving thread.

Three layers of guarantees:

* unit — the sketch's histograms and stratified estimator against
  hand-computable inputs, and the partial-combination algebra
  (:func:`finalize_partials`) including the degenerate intervals that
  once inverted;
* property — on any small synthetic table the sample covers the whole
  population, so the reported ``[lower, upper]`` MUST contain the true
  aggregate (no probabilistic slack), for plain dice and for HAVING;
* statistical — on a correlated/skewed table far larger than the
  sample, the true answer lands inside the 95% interval on at least
  85% of random heavy dice (the same floor ``bench_approx`` gates).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx import (
    CubeSketch,
    SketchUnsupported,
    component_layout,
    exact_partial,
    finalize_partials,
)
from repro.core.range_cubing import range_cubing
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import zipf_table
from repro.serve import QueryEngine, QueryRequest, ShardRouter
from repro.serve.engine import ServeError
from repro.table.aggregates import MinAggregator, default_aggregator

from tests.conftest import make_paper_table, table_strategy


def exact_dice(engine, predicates, having=None):
    """Oracle: the exact per-cell scan the sketch estimates."""
    snap = engine.snapshot()
    store = snap.cube.to_columnar()
    ids = store.base_cell_ids()
    cells = store.specific[ids]
    counts = store.counts[ids]
    keep = np.ones(len(ids), dtype=bool)
    for dim, values in predicates.items():
        keep &= np.isin(cells[:, int(dim)], list(values))
    if having is not None:
        keep &= counts >= having
    agg = snap.cube.aggregator
    total = store.merge_states(ids[keep])
    return None if total is None else agg.finalize(total)


def assert_contains(block, truth):
    """The approx block's interval must contain the exact answer."""
    assert "estimate" in block, f"unexpected fallback: {block}"
    for key, est in block["estimate"].items():
        true_v = 0.0 if truth is None else float(truth[key])
        lo, hi = block["lower"][key], block["upper"][key]
        if lo is None or hi is None:
            continue  # AVG over a possibly-empty selection: unbounded
        assert lo - 1e-6 <= true_v <= hi + 1e-6, (
            f"{key}: {true_v} outside [{lo}, {hi}]"
        )
        assert lo - 1e-9 <= est <= hi + 1e-9


# ----------------------------------------------------------------------
# wire protocol: opt-in fields stay absent-when-unset
# ----------------------------------------------------------------------


def test_wire_shape_without_approx_is_byte_identical():
    request = QueryRequest(op="dice", predicates={"0": [1, 2]})
    wire = request.to_json()
    assert "approx" not in wire and "confidence" not in wire
    assert "having" not in wire
    assert json.dumps(wire, sort_keys=True) == json.dumps(
        {"op": "dice", "predicates": {"0": [1, 2]}}, sort_keys=True
    )


def test_approx_fields_round_trip():
    request = QueryRequest(
        op="dice",
        predicates={"0": [1]},
        approx=True,
        confidence=0.99,
        having=5,
    )
    back = QueryRequest.from_json(request.to_json())
    assert back.approx is True
    assert back.confidence == 0.99
    assert back.having == 5


def test_exact_dice_response_carries_no_approx_block():
    engine = QueryEngine.from_table(make_paper_table())
    response = engine.execute(
        QueryRequest(op="dice", predicates={"store": [0, 1]})
    )
    assert "approx" not in response


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "request_",
    [
        QueryRequest(op="point", cell=[None, None, None, None], approx=True),
        QueryRequest(op="dice", predicates={"0": [0]}, confidence=0.9),
        QueryRequest(op="dice", predicates={"0": [0]}, having=1),
        QueryRequest(op="dice", predicates={"0": [0]}, approx=True, confidence=1.5),
        QueryRequest(op="dice", predicates={"0": [0]}, approx=True, confidence=0.0),
        QueryRequest(op="dice", predicates={"0": [0]}, approx=True, having=-1),
    ],
)
def test_malformed_approx_requests_raise(request_):
    engine = QueryEngine.from_table(make_paper_table())
    with pytest.raises(ServeError):
        engine.execute(request_)


def test_predicate_validation_still_rejects_bad_codes():
    engine = QueryEngine.from_table(make_paper_table())
    for bad in ([0, -1], [0.5], [True], "S1", []):
        with pytest.raises(ServeError):
            engine.execute(
                QueryRequest(op="dice", predicates={"0": bad}, approx=True)
            )


# ----------------------------------------------------------------------
# engine: fully-sampled tables answer exactly
# ----------------------------------------------------------------------


def test_tiny_table_estimate_is_exact_with_zero_width_bounds():
    engine = QueryEngine.from_table(make_paper_table())
    exact = engine.execute(
        QueryRequest(op="dice", predicates={"store": [0, 1]})
    )
    approx = engine.execute(
        QueryRequest(op="dice", predicates={"store": [0, 1]}, approx=True)
    )
    block = approx["approx"]
    for key, value in exact["value"].items():
        assert block["estimate"][key] == pytest.approx(float(value))
        assert block["lower"][key] == pytest.approx(float(value))
        assert block["upper"][key] == pytest.approx(float(value))
    assert block["confidence"] == 0.95
    assert approx["cell"] == exact["cell"]
    assert approx["predicates"] == exact["predicates"]


def test_having_filters_light_cells():
    # paper table: every (store,city,product,date) cell holds one row,
    # so having=2 over the finest cells admits nothing.
    engine = QueryEngine.from_table(make_paper_table())
    response = engine.execute(
        QueryRequest(
            op="dice",
            predicates={"store": [0, 1, 2]},
            approx=True,
            having=2,
        )
    )
    block = response["approx"]
    assert block["estimate"]["count"] == 0.0
    assert block["upper"]["count"] == 0.0


def test_unsupported_aggregator_falls_back_to_exact():
    engine = QueryEngine.from_table(
        make_paper_table(), aggregator=MinAggregator(0)
    )
    response = engine.execute(
        QueryRequest(op="dice", predicates={"store": [0]}, approx=True)
    )
    block = response["approx"]
    assert block == {"fallback": True, "reason": "unsupported-aggregator"}
    exact = engine.execute(QueryRequest(op="dice", predicates={"store": [0]}))
    assert response["value"] == exact["value"]


def test_having_cannot_ride_the_fallback():
    engine = QueryEngine.from_table(
        make_paper_table(), aggregator=MinAggregator(0)
    )
    with pytest.raises(ServeError):
        engine.execute(
            QueryRequest(
                op="dice", predicates={"store": [0]}, approx=True, having=1
            )
        )


def test_explain_reports_the_estimator():
    engine = QueryEngine.from_table(make_paper_table())
    response = engine.execute(
        QueryRequest(
            op="dice", predicates={"store": [0]}, approx=True, explain=True
        )
    )
    account = response["explain"]["approx"]
    assert account["estimator"] == "stratified-cell-sample"
    assert account["sample_size"] > 0
    assert "bound_width" in account


# ----------------------------------------------------------------------
# property: full-coverage tables must always bound the truth
# ----------------------------------------------------------------------


@st.composite
def dice_case(draw):
    table = draw(table_strategy(min_rows=2, max_rows=24, min_dims=2))
    n_dims = table.schema.n_dims
    n_pred = draw(st.integers(1, n_dims))
    dims = draw(
        st.lists(
            st.integers(0, n_dims - 1),
            min_size=n_pred,
            max_size=n_pred,
            unique=True,
        )
    )
    predicates = {
        str(d): draw(
            st.lists(st.integers(0, 4), min_size=1, max_size=4, unique=True)
        )
        for d in dims
    }
    having = draw(st.none() | st.integers(0, 3))
    return table, predicates, having


@given(dice_case())
@settings(max_examples=60, deadline=None)
def test_bounds_always_contain_truth_when_fully_sampled(case):
    table, predicates, having = case
    engine = QueryEngine.from_table(table, cache_capacity=0)
    response = engine.execute(
        QueryRequest(op="dice", predicates=predicates, approx=True, having=having)
    )
    block = response["approx"]
    assert_contains(block, exact_dice(engine, predicates, having))
    # well-formed intervals, always
    for key in block["estimate"]:
        lo, hi = block["lower"][key], block["upper"][key]
        if lo is not None and hi is not None:
            assert lo <= hi
    assert block["lower"]["count"] >= 0.0


# ----------------------------------------------------------------------
# statistical: real sampling regime covers at the configured confidence
# ----------------------------------------------------------------------


def test_sampled_regime_hits_the_coverage_floor():
    rng = np.random.default_rng(11)
    table = correlated_table(
        30_000,
        6,
        40,
        (FunctionalDependency((0,), (1,)),),
        theta=1.1,
        seed=3,
    )
    engine = QueryEngine.from_table(table, cache_capacity=0)
    covered = total = 0
    for _ in range(60):
        dims = rng.choice(6, size=3, replace=False)
        predicates = {
            str(int(d)): sorted(
                int(v) for v in rng.choice(40, size=15, replace=False)
            )
            for d in dims
        }
        response = engine.execute(
            QueryRequest(op="dice", predicates=predicates, approx=True)
        )
        block = response["approx"]
        truth = exact_dice(engine, predicates)
        true_count = 0.0 if truth is None else float(truth["count"])
        total += 1
        covered += (
            block["lower"]["count"] - 1e-6
            <= true_count
            <= block["upper"]["count"] + 1e-6
        )
    assert covered / total >= 0.85


# ----------------------------------------------------------------------
# sketch unit tests
# ----------------------------------------------------------------------


@pytest.fixture
def sketch():
    table = make_paper_table()
    store = range_cubing(table).to_columnar()
    return CubeSketch.from_store(store)


def test_histogram_mass_matches_the_table(sketch):
    # store S1 has 2 rows, S2 has 3, S3 has 1 (paper running example)
    assert sketch.hist_mass(0, [0]) == 2
    assert sketch.hist_mass(0, [1]) == 3
    assert sketch.hist_mass(0, [0, 1, 2]) == 6
    assert sketch.hist_mass(0, []) == 0
    assert sketch.hist_mass(0, [99]) == 0  # out of range: no mass
    assert sketch.hist_mass(0, [-3, 0]) == 2  # negatives carry no mass
    assert sketch.hist_mass(1, np.array([0, 1, 2])) == 6


def test_estimate_partial_counts_and_ceiling(sketch):
    partial = sketch.estimate_partial({}, {0: [0, 1]})
    assert partial["matched"] == 5  # 5 finest cells under S1/S2
    assert partial["ceil"] == 5.0  # histogram COUNT ceiling
    assert partial["est"][0] == pytest.approx(5.0)  # fully sampled: exact
    assert all(v == 0.0 for v in partial["var"])


def test_estimate_partial_with_base_and_empty_sets(sketch):
    pinned = sketch.estimate_partial({0: 1}, {2: [0]})
    assert pinned["matched"] == 2  # S2 sells P1 in two cities
    empty = sketch.estimate_partial({}, {0: []})
    assert empty["matched"] == 0 and empty["est"][0] == 0.0


def test_min_aggregator_is_unsupported():
    table = make_paper_table()
    store = range_cubing(table, aggregator=MinAggregator(0)).to_columnar()
    with pytest.raises(SketchUnsupported):
        CubeSketch.from_store(store)


def test_sketch_array_round_trip(sketch):
    back = CubeSketch.from_arrays(sketch.manifest_entry(), sketch.to_arrays())
    a = sketch.estimate_partial({}, {0: [0, 1]})
    b = back.estimate_partial({}, {0: [0, 1]})
    assert a == b


# ----------------------------------------------------------------------
# finalize_partials: the combination algebra
# ----------------------------------------------------------------------


def agg1():
    return default_aggregator(1)


def test_exact_partial_finalizes_to_zero_width():
    agg = agg1()
    state = (3, 42.0)
    answer = finalize_partials(agg, [exact_partial(agg, state)], 0.95)
    assert answer.estimate == {"count": 3.0, "sum": 42.0}
    assert answer.lower == answer.upper == answer.estimate
    assert answer.bound_width == 0.0


def test_partials_sum_across_shards():
    agg = agg1()
    answer = finalize_partials(
        agg,
        [exact_partial(agg, (2, 10.0)), exact_partial(agg, (3, 5.0))],
        0.9,
    )
    assert answer.estimate == {"count": 5.0, "sum": 15.0}
    assert answer.confidence == 0.9


def test_contradictory_interval_falls_back_to_the_deterministic_box():
    # Regression: estimate far above the ceiling with a tiny variance
    # used to clip into an inverted (upper < lower) interval.
    agg = agg1()
    partial = {
        "estimator": "stratified-cell-sample",
        "est": [100.0, 100.0],
        "var": [1.0, 1.0],
        "floor": [2.0, 2.0],
        "floor_valid": [True, True],
        "ceil": 10.0,
        "sample_size": 8,
        "matched": 4,
        "population": 100,
        "rows": 1000,
    }
    answer = finalize_partials(agg, [partial], 0.95)
    assert answer.lower["count"] == 2.0
    assert answer.upper["count"] == 10.0
    assert answer.lower["count"] <= answer.estimate["count"] <= answer.upper["count"]
    for key in answer.estimate:
        assert answer.lower[key] <= answer.upper[key]


def test_component_layout_names_match_results():
    agg = agg1()
    components, kinds = component_layout(agg)
    assert components == ("count", "s0")
    assert kinds == ("sum",)


# ----------------------------------------------------------------------
# snapshot + sharded serving paths
# ----------------------------------------------------------------------


def test_snapshot_persists_and_serves_the_sketch(tmp_path):
    from repro.store import SnapshotEngine, write_snapshot

    table = zipf_table(800, 4, 8, 1.2, seed=5)
    cube = range_cubing(table)
    path = str(tmp_path / "cube.snapshot")
    write_snapshot(cube, path, table.schema, sketch=True)
    request = QueryRequest(op="dice", predicates={"0": [0, 1]}, approx=True)
    with SnapshotEngine(path, cache_capacity=0) as engine:
        assert engine._store.sketch is not None  # loaded, not rebuilt
        response = engine.execute(request)
    resident = QueryEngine.from_table(table, cache_capacity=0)
    assert_contains(response["approx"], exact_dice(resident, {0: [0, 1]}))


def test_sharded_router_merges_partials_with_bounds():
    table = zipf_table(3000, 4, 10, 1.2, seed=9)
    resident = QueryEngine.from_table(table, cache_capacity=0)
    predicates = {"1": [0, 1, 2], "2": [0, 1, 2, 3]}
    with ShardRouter.from_table(table, n_shards=2) as router:
        response = router.execute(
            QueryRequest(op="dice", predicates=predicates, approx=True)
        )
    block = response["approx"]
    assert block["sample_size"] > 0
    assert_contains(block, exact_dice(resident, {1: [0, 1, 2], 2: [0, 1, 2, 3]}))
