"""Unit tests for the serving query engine (read path, cache, refresh)."""

import pytest

from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube
from repro.cube.query import CubeQuery
from repro.serve import QueryEngine
from repro.serve.engine import ServeError

from tests.conftest import make_encoded_table, make_paper_table


@pytest.fixture
def engine() -> QueryEngine:
    return QueryEngine.from_table(make_paper_table())


def test_point_matches_oracle_on_every_cell(engine):
    table = make_paper_table()
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        response = engine.execute({"op": "point", "cell": list(cell)})
        assert response["op"] == "point" and response["version"] == 0
        assert response["cell"] == list(cell)
        assert response["value"] == cube.aggregator.finalize(state)
    assert engine.point((2, None, None, None)) is not None
    assert engine.point((2, 0, None, None)) is None  # S3 never sells in C1


def test_rollup_drilldown_slice_match_cube_query(engine):
    table = make_paper_table()
    cube = range_cubing(table)
    query = CubeQuery(cube, table.schema, table=None)

    cell = (0, 0, None, None)
    up, value = query.roll_up(cell, "city")
    response = engine.execute({"op": "rollup", "cell": list(cell), "dim": "city"})
    assert response["cell"] == list(up) and response["value"] == value
    assert response["dim"] == 1

    children = query.drill_down(cell, "product")
    response = engine.execute({"op": "drilldown", "cell": list(cell), "dim": 2})
    assert response["children"] == [
        {"cell": list(c), "value": v} for c, v in children
    ]

    sliced = query.slice((None, 0, 0, None))
    response = engine.execute({"op": "slice", "cell": [None, 0, 0, None]})
    assert response["children"] == [{"cell": list(c), "value": v} for c, v in sliced]


def test_bindings_by_name_index_and_json_key(engine):
    want = engine.execute({"op": "point", "cell": [0, None, 2, None]})["value"]
    by_name = engine.execute({"op": "point", "bindings": {"store": 0, "product": 2}})
    by_index = engine.execute({"op": "point", "bindings": {0: 0, 2: 2}})
    by_json_key = engine.execute({"op": "point", "bindings": {"0": 0, "2": 2}})
    assert by_name["value"] == by_index["value"] == by_json_key["value"] == want
    assert by_name["cell"] == [0, None, 2, None]


@pytest.mark.parametrize(
    "request_",
    [
        {"op": "point", "cell": [0, None]},  # wrong arity
        {"op": "point", "cell": [0, None, None, -1]},  # negative code
        {"op": "point", "cell": [0, None, None, 1.5]},  # non-int code
        {"op": "point", "cell": [True, None, None, None]},  # bool is not a code
        {"op": "point"},  # neither cell nor bindings
        {"op": "point", "bindings": [0, 1]},  # not a mapping
        {"op": "point", "bindings": {"nope": 0}},  # unknown dimension
        {"op": "point", "bindings": {9: 0}},  # index out of range
        {"op": "point", "bindings": {"store": -1}},  # negative binding
        {"op": "cube"},  # unknown op
        {"op": "rollup", "cell": [None, 0, None, None], "dim": 0},  # already *
        {"op": "rollup", "cell": [0, 0, None, None]},  # missing dim
        {"op": "drilldown", "cell": [0, 0, None, None], "dim": 0},  # already bound
        {"op": "drilldown", "cell": [0, None, None, None], "dim": True},
    ],
)
def test_malformed_requests_raise_serve_error(engine, request_):
    with pytest.raises(ServeError):
        engine.execute(request_)


def test_non_mapping_request_rejected(engine):
    with pytest.raises(ServeError):
        engine.execute(["op", "point"])


def test_cached_flag_and_counters(engine):
    request = {"op": "point", "cell": [0, None, None, None]}
    first = engine.execute(request)
    second = engine.execute(dict(request))  # equal but distinct dict
    assert first["cached"] is False and second["cached"] is True
    assert first["value"] == second["value"]
    other = engine.execute({"op": "point", "cell": [1, None, None, None]})
    assert other["cached"] is False
    stats = engine.cache.stats()
    assert stats.hits == 1 and stats.size == 2


def test_unhashable_cell_raises_precise_error(engine):
    with pytest.raises(ServeError):
        engine.execute({"op": "point", "cell": [[0], None, None, None]})


def test_append_bumps_version_and_invalidates_cache(engine):
    request = {"op": "point", "cell": [0, 0, 0, 0]}
    before = engine.execute(request)
    assert engine.execute(request)["cached"] is True
    version = engine.append([[0, 0, 0, 0]], [[900.0]])
    assert version == 1 and engine.version == 1
    after = engine.execute(request)
    assert after["cached"] is False  # the old entry can never be served
    assert after["version"] == 1 and before["version"] == 0
    assert after["value"] != before["value"]
    assert engine.cache.stats().invalidations == 1


def test_append_extends_cardinality_and_drilldown(engine):
    assert engine.stats()["cardinalities"] == [3, 3, 3, 2]
    engine.append([[3, 0, 0, 2]], [[50.0]])  # new store S4, new date D3
    stats = engine.stats()
    assert stats["cardinalities"] == [4, 3, 3, 3]
    children = engine.execute(
        {"op": "drilldown", "cell": [None, None, None, None], "dim": "store"}
    )["children"]
    cells = [tuple(c["cell"]) for c in children]
    assert (3, None, None, None) in cells


@pytest.mark.parametrize(
    "rows,measures",
    [
        ([], None),  # empty batch
        ([[0, 0, 0]], None),  # wrong arity
        ([[0, 0, 0, -1]], None),  # negative code
        ([[0, 0, 0, True]], None),  # bool code
        ([[0, 0, 0, 0]], [[1.0], [2.0]]),  # measure row count mismatch
        ([[0, 0, 0, 0]], [[1.0, 2.0]]),  # measure arity mismatch
    ],
)
def test_append_validation(engine, rows, measures):
    with pytest.raises(ServeError):
        engine.append(rows, measures)
    assert engine.version == 0  # nothing absorbed


def test_append_table_equals_batch_rebuild():
    base = make_encoded_table([(0, 0), (0, 1), (1, 0)])
    extra = make_encoded_table([(1, 1), (0, 0)])
    engine = QueryEngine.from_table(base)
    engine.append_table(extra)
    combined_rows = [tuple(r) for r in base.dim_rows()] + [
        tuple(r) for r in extra.dim_rows()
    ]
    combined_measures = [tuple(m) for m in base.measure_rows()] + [
        tuple(m) for m in extra.measure_rows()
    ]
    oracle = QueryEngine.from_table(
        make_encoded_table(combined_rows, measures=combined_measures)
    )
    for cell, _ in compute_full_cube(make_encoded_table(combined_rows)).cells():
        assert engine.point(cell) == oracle.point(cell)


def test_min_support_filters_sparse_cells():
    engine = QueryEngine.from_table(make_paper_table(), min_support=3)
    assert engine.point((None, None, None, None)) is not None  # apex count 6
    assert engine.point((0, 0, 0, 0)) is None  # count 1 < 3


def test_stats_shape(engine):
    stats = engine.stats()
    assert stats["version"] == 0
    assert stats["n_dims"] == 4 and stats["n_measures"] == 1
    assert stats["dimension_names"] == ["store", "city", "product", "date"]
    assert stats["rows_absorbed"] == 6
    assert stats["n_ranges"] == 33  # the paper's Figure 6 count
    assert stats["min_support"] == 1
    assert set(stats["cache"]) == {
        "capacity", "size", "hits", "misses", "evictions", "invalidations", "hit_rate",
    }


def test_schema_arity_mismatch_rejected():
    from repro.core.incremental import IncrementalRangeCuber
    from repro.table.aggregates import default_aggregator

    table = make_paper_table()
    cuber = IncrementalRangeCuber(3, default_aggregator(1))
    with pytest.raises(ValueError):
        QueryEngine(cuber, table.schema)
