"""Unit + property tests for partitioned trie construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import range_cubing_from_trie
from repro.core.partitioned import build_partitioned, chunked, merge_tries
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.table.aggregates import SumCountAggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import cubes_equal, make_paper_table, table_strategy
from tests.test_range_trie import snapshot

AGG = SumCountAggregator(0)


def test_chunking_covers_all_rows():
    table = make_paper_table()
    chunks = list(chunked(table, 4))
    assert sum(c.n_rows for c in chunks) == table.n_rows
    assert all(c.n_rows > 0 for c in chunks)
    with pytest.raises(ValueError):
        list(chunked(table, 0))


def test_partitioned_build_equals_monolithic():
    table = make_paper_table()
    monolithic = RangeTrie.build(table, AGG)
    for n_chunks in (1, 2, 3, 6):
        partitioned = build_partitioned(table, n_chunks, AGG)
        assert snapshot(partitioned.root) == snapshot(monolithic.root)
        partitioned.check_invariants()


def test_partitioned_trie_yields_identical_cube():
    table = make_paper_table()
    trie = build_partitioned(table, 3, AGG)
    assert cubes_equal(
        dict(range_cubing_from_trie(trie).expand()),
        dict(range_cubing(table).expand()),
    )


def test_merge_tries_validations():
    with pytest.raises(ValueError):
        merge_tries([])
    a = RangeTrie(2, AGG)
    b = RangeTrie(3, AGG)
    with pytest.raises(ValueError):
        merge_tries([a, b])


def test_merge_skips_empty_tries():
    table = make_paper_table()
    loaded = RangeTrie.build(table, AGG)
    empty = RangeTrie(table.n_dims, AGG)
    merged = merge_tries([empty, loaded, empty])
    assert snapshot(merged.root) == snapshot(loaded.root)


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    trie = build_partitioned(table, 4, AGG)
    assert trie.root.children == {}


def test_inputs_unmodified_by_merge():
    table = make_paper_table()
    chunks = list(chunked(table, 2))
    tries = [RangeTrie.build(c, AGG) for c in chunks]
    before = [snapshot(t.root) for t in tries]
    merge_tries(tries)
    assert [snapshot(t.root) for t in tries] == before


@settings(max_examples=50, deadline=None)
@given(table_strategy(min_rows=1), st.integers(1, 6))
def test_partitioned_equals_monolithic_property(table, n_chunks):
    monolithic = RangeTrie.build(table, AGG)
    partitioned = build_partitioned(table, n_chunks, AGG)
    assert snapshot(partitioned.root) == snapshot(monolithic.root)
