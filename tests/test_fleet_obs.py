"""Fleet-wide observability: trace propagation, federation, EXPLAIN, readiness.

The acceptance bar from the sharded tier's point of view: one request
against a 2-shard HTTP fleet produces *one* trace tree (router and both
shard workers share a trace id), an EXPLAIN account naming the shards
touched and each shard's tier source, and a router ``/metrics`` scrape
whose worker series carry ``shard`` labels under the strict parser.
"""

import json
import threading
import urllib.request

import pytest

import repro.obs as obs
from repro.data.synthetic import uniform_table
from repro.obs import (
    MetricRegistry,
    SlowQueryLog,
    TraceContext,
    Tracer,
    get_tracer,
    parse_prometheus_text,
    set_enabled,
)
from repro.serve import (
    CubeServer,
    HTTPCubeClient,
    QueryEngine,
    QueryRequest,
    ShardRouter,
)

N_DIMS = 4
CARD = 10


@pytest.fixture(autouse=True)
def clean_obs():
    """Tests share the process-wide registry/tracer; isolate their values."""
    obs.reset()
    set_enabled(True)
    yield
    obs.reset()
    set_enabled(True)


def _columnar_table(seed=7, n_rows=6000):
    # Big enough that every shard's cube crosses COLUMNAR_THRESHOLD, so
    # the postings/cuboid-map counters and EXPLAIN accounts populate.
    return uniform_table(n_rows, N_DIMS, CARD, seed=seed)


@pytest.fixture(scope="module")
def fleet():
    """A 2-shard router behind the HTTP front end, columnar-sized shards."""
    router = ShardRouter.from_table(_columnar_table(), n_shards=2, shard_dim=0)
    with CubeServer(router, port=0) as server:
        with HTTPCubeClient(server.url) as client:
            yield router, server.url, client
    router.close()


# ---------------------------------------------------------------------------
# TraceContext: the propagated identity
# ---------------------------------------------------------------------------


def test_trace_context_traceparent_roundtrip():
    ctx = TraceContext("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
    header = ctx.to_traceparent()
    assert header == "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
    assert TraceContext.from_traceparent(header) == ctx
    assert TraceContext.from_traceparent("  " + header.upper() + "  ") == ctx
    assert TraceContext.from_json(ctx.to_json()) == ctx


def test_trace_context_drops_malformed_headers():
    good = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
    for bad in (
        None,
        "",
        "garbage",
        good[:-3],  # truncated
        "ff" + good[2:],  # forbidden version
        "00-" + "0" * 32 + "-b7ad6b7169203331-01",  # all-zero trace id
        "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",
    ):
        assert TraceContext.from_traceparent(bad) is None


def test_trace_context_constructor_validates():
    for trace_id, span_id in (
        ("nope", "b7ad6b7169203331"),
        ("0af7651916cd43dd8448eb211c80319c", "nope"),
        ("0" * 32, "b7ad6b7169203331"),
        ("0af7651916cd43dd8448eb211c80319c", "0" * 16),
    ):
        with pytest.raises(ValueError):
            TraceContext(trace_id, span_id)


# ---------------------------------------------------------------------------
# remote grafting and cross-worker folding
# ---------------------------------------------------------------------------


def test_remote_context_seeds_root_but_local_parent_wins():
    tracer = Tracer()
    remote = TraceContext("ab" * 16, "cd" * 8)
    with tracer.span("grafted", remote_context=remote) as root:
        assert root.trace_id == remote.trace_id
        assert root.parent_id == remote.span_id
        with tracer.span("inner", remote_context=TraceContext("ef" * 16, "12" * 8)) as inner:
            pass
    # An open local parent always wins over a remote context.
    assert inner.trace_id == root.trace_id
    assert inner.parent_id == root.span_id


def test_fold_preserves_ids_through_chrome_export():
    tracer = Tracer()
    worker_span = {
        "name": "shard.scatter",
        "trace_id": "ab" * 16,
        "span_id": "cd" * 8,
        "parent_id": "ef" * 8,
        "start": 1000.0,
        "duration": 0.5,
        "thread": 42,
        "attributes": {"shard": 1},
    }
    assert tracer.fold([worker_span]) == 1
    (folded,) = tracer.buffer.spans()
    assert folded.trace_id == worker_span["trace_id"]
    assert folded.span_id == worker_span["span_id"]
    assert folded.parent_id == worker_span["parent_id"]  # not re-parented
    assert folded.thread_id == 42
    (event,) = tracer.buffer.export_chrome()["traceEvents"]
    assert event["args"]["trace_id"] == worker_span["trace_id"]
    assert event["args"]["span_id"] == worker_span["span_id"]
    assert event["args"]["parent_id"] == worker_span["parent_id"]
    assert event["args"]["shard"] == 1
    assert event["tid"] == 42


def test_fold_without_ids_parents_under_the_open_span():
    tracer = Tracer()
    with tracer.span("stage") as stage:
        tracer.fold([{"name": "anon", "start": 0.0, "duration": 0.1}])
    anon = next(s for s in tracer.buffer.spans() if s.name == "anon")
    assert anon.trace_id == stage.trace_id
    assert anon.parent_id == stage.span_id


def test_trace_buffer_concurrent_writers_stay_bounded_and_untorn():
    tracer = Tracer(capacity=64)
    n_threads, n_spans = 8, 300
    barrier = threading.Barrier(n_threads + 1)
    stop = threading.Event()
    torn: list = []

    def writer(i: int) -> None:
        barrier.wait()
        for j in range(n_spans):
            with tracer.span(f"w{i}.{j}", i=i):
                pass

    def reader() -> None:
        barrier.wait()
        while not stop.is_set():
            snapshot = tracer.buffer.spans()
            if len(snapshot) > 64:
                torn.append(len(snapshot))
            for span in snapshot:
                if len(span.trace_id) != 32 or len(span.span_id) != 16:
                    torn.append(span)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_threads)]
    observer = threading.Thread(target=reader)
    observer.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    observer.join()
    assert torn == []
    spans = tracer.buffer.spans()
    assert len(spans) == 64  # bounded, newest retained
    assert len({s.span_id for s in spans}) == 64  # no duplicated slots


# ---------------------------------------------------------------------------
# metrics federation: merge_labeled -> render -> strict parse round trip
# ---------------------------------------------------------------------------


def test_federation_roundtrip_with_escaped_label_values():
    worker = MetricRegistry()
    jobs = worker.counter("jobs_total", "Jobs.", ("kind",))
    tricky = 'quo"te\nnew\\line'
    jobs.inc(3, kind=tricky)
    worker.gauge("depth", "Depth.").set(5)
    lat = worker.histogram("lat_seconds", "Lat.")
    lat.observe(0.01)
    lat.observe(0.2)

    fleet = MetricRegistry()
    fleet.merge_labeled(worker.to_dict(), "shard", "0")
    fleet.merge_labeled(worker.to_dict(), "shard", "1")

    families = parse_prometheus_text(fleet.render_prometheus())
    jobs_samples = {
        tuple(sorted(labels.items())): value
        for _, labels, value in families["jobs_total"]["samples"]
    }
    # The tricky label value survives escaping + strict parsing verbatim,
    # per shard.
    for shard in ("0", "1"):
        assert jobs_samples[(("kind", tricky), ("shard", shard))] == 3
    depth = {
        labels["shard"]: value for _, labels, value in families["depth"]["samples"]
    }
    assert depth == {"0": 5, "1": 5}  # gauges stay distinguishable per shard
    hist = families["lat_seconds"]["samples"]
    counts = {
        labels["shard"]: value
        for name, labels, value in hist
        if name == "lat_seconds_count"
    }
    assert counts == {"0": 2, "1": 2}  # histograms bucket-merge per shard


def test_federation_does_not_double_label_already_federated_series():
    worker = MetricRegistry()
    worker.counter("requests_total", "R.", ("shard",)).inc(2, shard="7")
    fleet = MetricRegistry()
    fleet.merge_labeled(worker.to_dict(), "shard", "router")
    fleet.merge_labeled(worker.to_dict(), "shard", "router")
    # The existing shard label is authoritative; no second label grows.
    metric = fleet.get("requests_total")
    assert metric.labelnames == ("shard",)
    assert metric.value(shard="7") == 4


def test_counters_sum_per_shard_when_merged_twice():
    worker = MetricRegistry()
    worker.counter("hits_total", "H.").inc(5)
    fleet = MetricRegistry()
    fleet.merge_labeled(worker.to_dict(), "shard", "0")
    fleet.merge_labeled(worker.to_dict(), "shard", "0")
    assert fleet.get("hits_total").value(shard="0") == 10


# ---------------------------------------------------------------------------
# wire-shape discipline: explain / trace_context absent when unset
# ---------------------------------------------------------------------------


def test_wire_shapes_unchanged_when_obs_fields_unset():
    plain = QueryRequest(op="point", cell=[0, None])
    wire = plain.to_json()
    assert "explain" not in wire and "trace_context" not in wire

    ctx = TraceContext("ab" * 16, "cd" * 8)
    decorated = QueryRequest(op="point", cell=[0, None], explain=True, trace_context=ctx)
    wire = decorated.to_json()
    assert wire["explain"] is True
    assert wire["trace_context"] == ctx.to_json()
    parsed = QueryRequest.from_json(wire)
    assert parsed.explain is True
    assert parsed.trace_context == ctx


# ---------------------------------------------------------------------------
# the 2-shard HTTP fleet: the acceptance scenario
# ---------------------------------------------------------------------------


def test_fleet_dice_explain_returns_stitched_trace_and_shard_accounts(fleet):
    router, url, client = fleet
    get_tracer().buffer.clear()
    response = client.query(
        {"op": "dice", "predicates": {"1": [0, 1, 2]}, "explain": True}
    )
    assert response["value"] is not None
    account = response["explain"]
    assert account["op"] == "dice" and account["sharded"] is True
    assert account["routing"]["shards_touched"] == [0, 1]
    shards = {entry["shard"]: entry for entry in account["shards"]}
    assert set(shards) == {0, 1}
    for entry in shards.values():
        assert entry["tier"]["source"] in ("resident", "hot", "cold", "mixed")
        assert entry["elapsed_us"] > 0
    assert set(account["phases_us"]) == {"cache", "plan", "scatter", "merge"}

    # One stitched trace: the router's request span and both workers'
    # scatter spans share a single trace id.
    spans = get_tracer().buffer.spans()
    request_span = next(s for s in spans if s.name == "serve.request")
    shard_spans = [s for s in spans if s.name == "shard.scatter"]
    assert len(shard_spans) == 2
    assert {s.trace_id for s in shard_spans} == {request_span.trace_id}
    assert {s.attributes["shard"] for s in shard_spans} == {0, 1}


def test_traceparent_header_grafts_the_client_span(fleet):
    router, url, client = fleet
    get_tracer().buffer.clear()
    with get_tracer().span("client.op") as client_span:
        client.query({"op": "point", "cell": [0, 1, None, None]})
    request_span = next(
        s for s in get_tracer().buffer.spans() if s.name == "serve.request"
    )
    assert request_span.trace_id == client_span.trace_id
    assert request_span.parent_id == client_span.span_id


def test_body_trace_context_wins_over_header(fleet):
    router, url, client = fleet
    get_tracer().buffer.clear()
    body_ctx = TraceContext("ab" * 16, "cd" * 8)
    with get_tracer().span("client.op"):
        client.query(
            {
                "op": "point",
                "cell": [0, 1, None, None],
                "trace_context": body_ctx.to_json(),
            }
        )
    request_span = next(
        s for s in get_tracer().buffer.spans() if s.name == "serve.request"
    )
    assert request_span.trace_id == body_ctx.trace_id
    assert request_span.parent_id == body_ctx.span_id


def test_batch_explain_items_resolve_individually(fleet):
    router, url, client = fleet
    results = client.query_batch(
        [
            {"op": "point", "cell": [3, 0, None, None], "explain": True},
            {"op": "point", "cell": [1, 2, None, None]},
        ]
    )
    assert "explain" in results[0] and "explain" not in results[1]
    account = results[0]["explain"]
    if not account["cache_hit"]:  # an earlier test may have warmed the cell
        assert account["routing"]["shards_touched"] == [1]  # 3 % 2 shards


def test_router_metrics_federate_worker_series_with_shard_labels(fleet):
    router, url, client = fleet
    # Fresh cells: the router cache is module-scoped, and only a cache
    # miss scatters (and therefore touches the shard counters).
    client.query({"op": "dice", "predicates": {"2": [3, 4, 5]}})
    client.query_batch([{"op": "point", "cell": [None, None, 7, 7]}])
    raw = urllib.request.urlopen(url + "/metrics").read().decode()
    families = parse_prometheus_text(raw)  # strict: malformed output raises

    def shard_values(family):
        return {
            labels.get("shard")
            for _, labels, _ in families.get(family, {"samples": []})["samples"]
        }

    # Worker-side query kernels land with worker shard labels...
    worker_families = [
        f
        for f in ("repro_query_batch_size", "repro_query_postings_hits_total",
                  "repro_query_cuboid_map_hits_total")
        if shard_values(f) & {"0", "1"}
    ]
    assert worker_families, "no worker repro_query_* series federated"
    # ...the router's own per-shard series keep their original label...
    assert shard_values("repro_shard_requests_total") & {"0", "1"}
    # ...and router-local families are tagged shard="router".
    assert "router" in shard_values("repro_http_requests_total")


def test_metrics_scope_local_skips_federation(fleet):
    router, url, client = fleet
    client.query({"op": "point", "cell": [2, None, None, None]})
    raw = urllib.request.urlopen(url + "/metrics?scope=local").read().decode()
    families = parse_prometheus_text(raw)
    for _, labels, _ in families["repro_http_requests_total"]["samples"]:
        assert "shard" not in labels


def test_router_slowlog_entries_carry_trace_ids(fleet):
    router, url, client = fleet
    original = router.slow_log
    router.slow_log = SlowQueryLog(threshold=0.0)
    try:
        client.query({"op": "point", "cell": [0, None, None, None]})
        entries = json.loads(
            urllib.request.urlopen(url + "/slowlog").read()
        )["slow_queries"]
        assert entries
        entry = entries[-1]
        assert len(entry["trace_id"]) == 32 and len(entry["span_id"]) == 16
        # The ids match the request's span in the trace buffer.
        spans = {s.span_id: s for s in get_tracer().buffer.spans()}
        assert spans[entry["span_id"]].name == "serve.request"
    finally:
        router.slow_log = original


def test_scatter_envelope_backcompat_plain_list(fleet):
    router, _, _ = fleet
    # The historical positional call (no trace, no explain) still answers
    # with a bare result list, not the envelope.
    reply = router._workers[0].call(
        "scatter", router.version, [("point", (0, 1, None, None))], timeout=30
    )
    assert isinstance(reply, list) and len(reply) == 1


def test_readyz_serving_and_refresh_phases(fleet):
    router, url, client = fleet
    body = client.readyz()
    assert body["ready"] is True and body["state"] == "serving"
    assert body["shards_live"] == 2
    router._refresh_phase = "prepare"
    try:
        body = client.readyz()  # a 503 comes back as the body, not an error
        assert body["ready"] is False and body["state"] == "refresh-prepare"
    finally:
        router._refresh_phase = None


def test_readyz_degrades_when_a_shard_dies():
    router = ShardRouter.from_table(
        uniform_table(400, N_DIMS, CARD, seed=3), n_shards=2
    )
    try:
        with CubeServer(router, port=0) as server:
            with HTTPCubeClient(server.url) as client:
                assert client.readyz()["ready"] is True
                router._workers[1].process.terminate()
                router._workers[1].process.join(timeout=10)
                body = client.readyz()
                assert body["ready"] is False
                assert body["state"] == "degraded"
                assert body["dead_shards"] == [1]
    finally:
        router.close()


def test_single_engine_readiness_and_explain():
    engine = QueryEngine.from_table(_columnar_table(seed=5, n_rows=3000))
    assert engine.readiness() == {"ready": True, "state": "serving", "version": 0}
    response = engine.execute(
        QueryRequest(op="point", cell=[0, 1, None, None], explain=True)
    )
    account = response["explain"]
    assert account["op"] == "point" and account["cache_hit"] is False
    assert account["tier"] == {"source": "resident"}
    assert account.get("postings_intersected", 0) >= 1
    assert "phases_us" in account
    # EXPLAIN responses are never served from (or poison) the cache ...
    again = engine.execute(
        QueryRequest(op="point", cell=[0, 1, None, None], explain=True)
    )
    # ... but the plain result the first call cached is visible to it.
    assert again["explain"]["cache_hit"] is True
    plain = engine.execute(QueryRequest(op="point", cell=[0, 1, None, None]))
    assert "explain" not in plain


def test_snapshot_engine_explain(tmp_path):
    # SnapshotEngine borrows the QueryEngine read path attribute-by-attribute
    # rather than subclassing, so an explain request exercises the whole
    # borrow list (this once crashed on a missing _execute_explain).
    from repro.store import SnapshotEngine, write_snapshot

    table = _columnar_table(seed=11, n_rows=3000)
    resident = QueryEngine.from_table(table, cache_capacity=0)
    snap = resident.snapshot()
    path = tmp_path / "cube.snapshot"
    write_snapshot(snap.cube, path, snap.schema, rows_absorbed=table.n_rows)
    with SnapshotEngine(path) as engine:
        request = QueryRequest(op="point", cell=[0, 1, None, None], explain=True)
        response = engine.execute(request)
        account = response["explain"]
        assert account["engine"] == "snapshot"
        assert account["tier"]["source"] in {"hot", "cold"}
        assert account["snapshot_bytes_faulted"] >= 0
        assert response["value"] == resident.execute(
            QueryRequest(op="point", cell=[0, 1, None, None])
        )["value"]
        batch = engine.execute_batch(
            [QueryRequest(op="point", cell=[2, None, None, None], explain=True)]
        )
        assert batch[0]["explain"]["engine"] == "snapshot"
