"""Edge cases and failure injection across the whole library.

Everything here is about *not* silently producing a wrong cube: malformed
inputs are rejected with clear errors, degenerate-but-legal inputs
(single column, single value, all-duplicates, huge codes) produce correct
cubes, and the guards in the dense-array and index modules trip when they
should.
"""

import numpy as np
import pytest

from repro.baselines.buc import buc
from repro.baselines.hcubing import h_cubing
from repro.baselines.star_cubing import star_cubing
from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube
from repro.data.io import read_range_cube_csv, read_table_csv
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import cubes_equal, make_encoded_table


ALL_ALGORITHMS = [
    ("range", lambda t, **kw: range_cubing(t, **kw).to_materialized()),
    ("hcubing", h_cubing),
    ("buc", buc),
    ("star", star_cubing),
]


@pytest.mark.parametrize("name,algorithm", ALL_ALGORITHMS)
def test_single_column_single_value(name, algorithm):
    table = make_encoded_table([(0,)] * 5)
    cube = algorithm(table)
    assert cube.lookup((0,))[0] == 5
    assert cube.lookup((None,))[0] == 5


@pytest.mark.parametrize("name,algorithm", ALL_ALGORITHMS)
def test_all_rows_identical(name, algorithm):
    table = make_encoded_table([(1, 2, 3)] * 7)
    oracle = compute_full_cube(table)
    assert cubes_equal(algorithm(table).as_dict(), oracle.as_dict())
    assert len(oracle) == 8  # every cell collapses onto one tuple pattern


@pytest.mark.parametrize("name,algorithm", ALL_ALGORITHMS)
def test_sparse_large_codes(name, algorithm):
    # codes far apart: nothing may assume contiguity
    table = make_encoded_table([(10**6, 5), (0, 10**6), (10**6, 10**6)])
    oracle = compute_full_cube(table)
    assert cubes_equal(algorithm(table).as_dict(), oracle.as_dict())


@pytest.mark.parametrize("name,algorithm", ALL_ALGORITHMS)
def test_min_support_larger_than_table(name, algorithm):
    table = make_encoded_table([(0, 1), (1, 0)])
    cube = algorithm(table, min_support=99)
    assert len(cube) == 0


def test_negative_min_support_behaves_like_one():
    table = make_encoded_table([(0, 1)])
    assert cubes_equal(
        dict(range_cubing(table, min_support=-5).expand()),
        dict(range_cubing(table).expand()),
    )


def test_zero_dimensional_query_guard():
    table = make_encoded_table([(0, 1)])
    cube = range_cubing(table)
    with pytest.raises(ValueError):
        cube.range_of(())


def test_measures_with_nan_propagate_not_crash():
    schema = Schema.from_names(["a"], ["m"])
    table = BaseTable(
        schema, np.array([[0], [0]]), np.array([[float("nan")], [1.0]])
    )
    cube = range_cubing(table)
    state = cube.lookup((0,))
    assert state[0] == 2
    assert np.isnan(state[1])


def test_negative_measures_supported():
    table = make_encoded_table([(0,), (0,)], measures=[(-5.0,), (2.0,)])
    cube = range_cubing(table)
    assert cube.lookup((0,)) == (2, -3.0)


def test_read_table_csv_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_table_csv(tmp_path / "nope.csv")


def test_read_table_csv_ragged_measures(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,m\nx,1.0\ny,not-a-number\n")
    with pytest.raises(ValueError):
        read_table_csv(path, n_measures=1)


def test_read_range_cube_csv_rejects_garbage_coordinates(tmp_path):
    path = tmp_path / "cube.csv"
    path.write_text("d0,d1,count\n0,zzz,3\n")
    with pytest.raises(ValueError):
        read_range_cube_csv(path)


def test_mixed_type_raw_values_encode_cleanly():
    schema = Schema.from_names(["k"], [])
    table = BaseTable.from_rows(schema, [("x",), (3,), ((1, 2),), ("x",)])
    assert table.cardinalities == (3,)
    cube = range_cubing(table)
    assert cube.lookup((0,))[0] == 2  # "x" twice


def test_order_must_be_permutation():
    table = make_encoded_table([(0, 1)])
    with pytest.raises(ValueError):
        range_cubing(table, dim_order=(0, 0))


def test_very_wide_table_is_handled():
    # 12 dimensions, few rows: 4096 cuboids but tiny data
    rows = [tuple((i * 7 + d) % 3 for d in range(12)) for i in range(4)]
    table = make_encoded_table(rows)
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    assert cubes_equal(dict(cube.expand()), oracle.as_dict())
