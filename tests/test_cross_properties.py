"""Cross-cutting property tests: every representation of the same cube.

One random table in, nine systems out — all must tell one consistent
story.  This is the repository's strongest single safety net: a bug in
any algorithm breaks an equality here even if its own unit oracle was
fooled.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.buc import buc
from repro.baselines.c_cubing import closed_cubing
from repro.baselines.condensed import condensed_cube
from repro.baselines.dwarf import Dwarf
from repro.baselines.hcubing import h_cubing
from repro.baselines.multiway import multiway
from repro.baselines.qc_tree import QCTree
from repro.baselines.quotient import quotient_cube
from repro.baselines.star_cubing import star_cubing
from repro.core.range_cubing import range_cubing
from repro.cube.full_cube import compute_full_cube, full_cube_size
from repro.table.aggregates import MaxFunction, MinFunction, MultiAggregator, SumFunction

from tests.conftest import cubes_equal, table_strategy


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=18, max_dims=4))
def test_all_nine_systems_agree(table):
    oracle = compute_full_cube(table).as_dict()

    # five full-cube computations
    assert cubes_equal(dict(range_cubing(table).expand()), oracle)
    assert cubes_equal(h_cubing(table).as_dict(), oracle)
    assert cubes_equal(buc(table).as_dict(), oracle)
    assert cubes_equal(star_cubing(table).as_dict(), oracle)
    assert cubes_equal(multiway(table).as_dict(), oracle)

    # two compressed representations expand to the same cube
    assert cubes_equal(dict(condensed_cube(table).expand()), oracle)

    # three query structures answer every cell
    dwarf = Dwarf.build(table)
    qc = QCTree.build(table)
    cube = range_cubing(table)
    for cell, state in oracle.items():
        assert dwarf.lookup(cell)[0] == state[0]
        assert qc.lookup(cell)[0] == state[0]
        assert cube.lookup(cell)[0] == state[0]


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=18, max_dims=4))
def test_size_hierarchy_of_representations(table):
    """closed == quotient <= range <= full; condensed <= full."""
    full = full_cube_size(table)
    quotient = quotient_cube(table)
    closed = closed_cubing(table)
    ranges = range_cubing(table)
    condensed = condensed_cube(table)
    assert len(closed) == quotient.n_classes
    assert quotient.n_classes <= ranges.n_ranges <= full
    assert condensed.n_tuples <= full
    assert ranges.n_cells == condensed.n_cells == full


@settings(max_examples=20, deadline=None)
@given(table_strategy(max_rows=15, max_dims=3, n_measures=2))
def test_multi_measure_aggregation_consistency(table):
    """SUM/MIN/MAX of both measures agree between range cubing and oracle."""
    agg = MultiAggregator(
        [(SumFunction(), 0), (MinFunction(), 1), (MaxFunction(), 1)]
    )
    oracle = compute_full_cube(table, agg).as_dict()
    cube = dict(range_cubing(table, aggregator=agg).expand())
    assert cubes_equal(cube, oracle)
    hc = h_cubing(table, aggregator=agg).as_dict()
    assert cubes_equal(hc, oracle)


@settings(max_examples=20, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4), st.integers(2, 4))
def test_iceberg_consistency_everywhere(table, min_support):
    expected = compute_full_cube(table, min_support=min_support).as_dict()
    assert cubes_equal(
        dict(range_cubing(table, min_support=min_support).expand()), expected
    )
    assert cubes_equal(h_cubing(table, min_support=min_support).as_dict(), expected)
    assert cubes_equal(buc(table, min_support=min_support).as_dict(), expected)
    assert cubes_equal(
        star_cubing(table, min_support=min_support).as_dict(), expected
    )
    assert cubes_equal(multiway(table, min_support=min_support).as_dict(), expected)
    # closed iceberg cells are exactly the closed cells meeting the bar
    closed = closed_cubing(table, min_support=min_support)
    assert set(closed.iter_cells()) <= set(expected)
    assert all(expected[c][0] == s[0] for c, s in closed.cells())
