"""Unit tests for repro.table.schema."""

import pytest

from repro.table.schema import Dimension, Measure, Schema


def test_from_names_builds_dimensions_and_measures():
    schema = Schema.from_names(["a", "b"], ["m"])
    assert schema.n_dims == 2
    assert schema.n_measures == 1
    assert schema.dimension_names == ("a", "b")
    assert schema.measure_names == ("m",)


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema.from_names(["a", "a"])
    with pytest.raises(ValueError):
        Schema.from_names(["a"], ["a"])


def test_dimension_index_lookup():
    schema = Schema.from_names(["store", "city"], ["price"])
    assert schema.dimension_index("city") == 1
    assert schema.measure_index("price") == 0
    with pytest.raises(KeyError):
        schema.dimension_index("nope")
    with pytest.raises(KeyError):
        schema.measure_index("city")


def test_with_cardinality_is_functional():
    dim = Dimension("a")
    updated = dim.with_cardinality(5)
    assert dim.cardinality is None
    assert updated.cardinality == 5
    assert updated.name == "a"


def test_reordered_permutes_dimensions_only():
    schema = Schema.from_names(["a", "b", "c"], ["m"])
    reordered = schema.reordered([2, 0, 1])
    assert reordered.dimension_names == ("c", "a", "b")
    assert reordered.measures == schema.measures


def test_reordered_rejects_non_permutation():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(ValueError):
        schema.reordered([0, 0])
    with pytest.raises(ValueError):
        schema.reordered([0])


def test_cardinality_orders():
    dims = (Dimension("a", 5), Dimension("b", 100), Dimension("c", 5))
    schema = Schema(dims, (Measure("m"),))
    assert schema.cardinality_descending_order() == (1, 0, 2)
    assert schema.cardinality_ascending_order() == (0, 2, 1)


def test_cardinality_orders_require_known_cardinalities():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(ValueError):
        schema.cardinality_descending_order()
    with pytest.raises(ValueError):
        schema.cardinality_ascending_order()


def test_order_ties_break_by_index():
    dims = (Dimension("a", 7), Dimension("b", 7), Dimension("c", 7))
    schema = Schema(dims)
    assert schema.cardinality_descending_order() == (0, 1, 2)
    assert schema.cardinality_ascending_order() == (0, 1, 2)
