"""The paper's qualitative claims, checked end to end at tiny scale.

This is the shape-level regression net: a change that flips any
paper-level conclusion (who wins, which way a trend goes) fails here even
if every unit oracle still passes.
"""

import pytest

from repro.harness.claims import run_claims, main


@pytest.fixture(scope="module")
def results():
    return run_claims(preset="tiny")


def test_every_claim_holds(results):
    failed = [r for r in results if not r.passed]
    details = "\n".join(f"{r.claim_id}: {r.detail}" for r in failed)
    assert not failed, f"paper-shape claims failed:\n{details}"


def test_all_figures_are_covered(results):
    ids = {r.claim_id for r in results}
    for prefix in ("fig8", "fig9", "fig10", "fig11", "weather"):
        assert any(i.startswith(prefix) for i in ids), prefix


def test_main_prints_and_returns_zero(results, capsys, monkeypatch):
    import repro.harness.claims as claims_module

    monkeypatch.setattr(claims_module, "run_claims", lambda preset: results)
    assert main(["--preset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "claims hold" in out


def test_main_reports_failures(capsys, monkeypatch):
    import repro.harness.claims as claims_module
    from repro.harness.claims import ClaimResult

    fake = [ClaimResult("x", "a fake failing claim", False, "because")]
    monkeypatch.setattr(claims_module, "run_claims", lambda preset: fake)
    assert main(["--preset", "tiny"]) == 1
    assert "FAIL" in capsys.readouterr().out
