"""Bulk (sort-based) trie construction vs tuple-at-a-time Algorithm 1.

The range trie is canonical — the same tuple multiset always produces the
same trie regardless of insertion order — so ``RangeTrie.bulk_build`` has
an airtight oracle: node-by-node structural equality against
``RangeTrie.build``.  Aggregate states are compared with float tolerance
(the bulk path sums each segment with ``np.add.reduceat``, a different
addition order than pairwise merging).

Also covers the batch aggregation kernels, the single-pass ``stats()``
walk, the bulk absorption paths of the incremental cuber and the serving
engine, and the ``build_strategy`` plumbing of ``range_cubing``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.complex_measures import TopKAvgAggregator
from repro.core.incremental import BULK_ABSORB_THRESHOLD, IncrementalRangeCuber
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.core.range_trie import RangeTrie, TrieStats
from repro.serve.engine import QueryEngine
from repro.table.aggregates import (
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxAggregator,
    MaxFunction,
    MinAggregator,
    MultiAggregator,
    SumCountAggregator,
    SumFunction,
)
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from .conftest import make_encoded_table, make_paper_table, table_strategy


def states_equal(a, b, tol: float = 1e-9) -> bool:
    """Float-tolerant, *recursive* state comparison.

    Unlike :func:`tests.conftest.states_equal` this descends into nested
    tuples (AVG's ``(sum, count)`` pair, top-k lists), since the bulk path
    sums segments in a different order than pairwise merging.
    """
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and isinstance(b, tuple)
            and len(a) == len(b)
            and all(states_equal(x, y, tol) for x, y in zip(a, b))
        )
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= tol * max(1.0, abs(a), abs(b))
    return a == b


def tries_equal(a: RangeTrie, b: RangeTrie) -> bool:
    """Node-by-node equality: keys, children, states (float-tolerant)."""

    def node_equal(x, y) -> bool:
        if x.key != y.key:
            return False
        if (x.agg is None) != (y.agg is None):
            return False
        if x.agg is not None and not states_equal(x.agg, y.agg):
            return False
        if x.children.keys() != y.children.keys():
            return False
        return all(node_equal(c, y.children[v]) for v, c in x.children.items())

    return a.n_dims == b.n_dims and node_equal(a.root, b.root)


def assert_tries_equal(a: RangeTrie, b: RangeTrie) -> None:
    a.check_invariants()
    b.check_invariants()
    assert tries_equal(a, b)


def random_table(seed: int, n_rows: int = 120, n_dims: int = 4, card: int = 6):
    """A skewed random table with correlated columns (dup-friendly)."""
    rng = np.random.default_rng(seed)
    codes = rng.zipf(1.4, size=(n_rows, n_dims)).clip(max=card) - 1
    codes[:, -1] = codes[:, 0]  # perfectly correlated pair -> shared keys
    measures = rng.uniform(0.0, 100.0, size=(n_rows, 1)).round(3)
    return make_encoded_table(codes, n_measures=1, measures=measures)


# ---------------------------------------------------------------------------
# bulk_build == build
# ---------------------------------------------------------------------------


def test_bulk_build_matches_paper_trie():
    table = make_paper_table()
    assert_tries_equal(RangeTrie.bulk_build(table), RangeTrie.build(table))


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_bulk_build_matches_tuple_build(table):
    assert_tries_equal(RangeTrie.bulk_build(table), RangeTrie.build(table))


@pytest.mark.parametrize(
    "make_agg",
    [
        CountAggregator,
        SumCountAggregator,
        MinAggregator,
        MaxAggregator,
        AvgAggregator,
        lambda: MultiAggregator([(SumFunction(), 0), (MaxFunction(), 0)]),
        lambda: TopKAvgAggregator(k=3),
    ],
    ids=["count", "sumcount", "min", "max", "avg", "multi", "topk-avg"],
)
def test_bulk_build_matches_for_every_aggregator(make_agg):
    table = random_table(seed=7)
    agg = make_agg()
    assert_tries_equal(
        RangeTrie.bulk_build(table, agg), RangeTrie.build(table, agg)
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bulk_build_matches_on_skewed_duplicated_tables(seed):
    table = random_table(seed, n_rows=200, n_dims=5, card=4)
    assert_tries_equal(RangeTrie.bulk_build(table), RangeTrie.build(table))


def test_bulk_build_edge_cases():
    # Empty table.
    schema = Schema.from_names(["a", "b"])
    empty = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    trie = RangeTrie.bulk_build(empty)
    assert trie.root.children == {} and trie.root.agg is None
    # Single row; all-identical rows; globally constant first dimension.
    for codes in ([[3, 1, 2]], [[1, 2]] * 5, [[0, 1], [0, 2], [0, 1]]):
        table = make_encoded_table(codes)
        assert_tries_equal(RangeTrie.bulk_build(table), RangeTrie.build(table))


def test_bulk_build_timings_populated():
    timings: dict[str, float] = {}
    RangeTrie.bulk_build(random_table(seed=3), timings=timings)
    assert set(timings) == {"sort_seconds", "group_seconds", "aggregate_seconds"}
    assert all(v >= 0.0 for v in timings.values())


# ---------------------------------------------------------------------------
# batch aggregation kernels
# ---------------------------------------------------------------------------


def test_reduce_segments_matches_pairwise_merge():
    rng = np.random.default_rng(11)
    measures = rng.uniform(-5, 5, size=(20, 2))
    starts = np.array([0, 4, 5, 11], dtype=np.intp)
    bounds = [*starts.tolist(), len(measures)]
    for agg in (
        CountAggregator(),
        SumCountAggregator(1),
        MinAggregator(0),
        MaxAggregator(1),
        AvgAggregator(0),
        MultiAggregator([(SumFunction(), 0), (MaxFunction(), 1)]),
        TopKAvgAggregator(k=2),
    ):
        got = agg.reduce_segments(measures, starts)
        rows = [agg.state_from_row(row) for row in measures.tolist()]
        for state, lo, hi in zip(got, bounds, bounds[1:]):
            want = rows[lo]
            for other in rows[lo + 1 : hi]:
                want = agg.merge(want, other)
            assert states_equal(state, want)


def test_states_from_block_matches_state_from_row():
    measures = np.array([[1.5, 2.0], [3.0, -1.0], [0.0, 7.25]])
    for agg in (
        CountAggregator(),
        SumCountAggregator(0),
        AvgAggregator(1),
        TopKAvgAggregator(k=2),
    ):
        got = agg.states_from_block(measures)
        assert got == [agg.state_from_row(row) for row in measures.tolist()]


def test_batch_kernels_emit_plain_python_scalars():
    # np.float64 leaking into states would break JSON cube persistence.
    measures = np.array([[1.0], [2.0], [3.0]])
    starts = np.array([0, 2], dtype=np.intp)

    def flat(value):
        if isinstance(value, tuple):
            for v in value:
                yield from flat(v)
        else:
            yield value

    for agg in (SumCountAggregator(0), MinAggregator(0), AvgAggregator(0)):
        for state in agg.states_from_block(measures) + agg.reduce_segments(
            measures, starts
        ):
            assert all(type(v) in (int, float) for v in flat(state)), state


# ---------------------------------------------------------------------------
# single-pass stats()
# ---------------------------------------------------------------------------


def walked_stats(trie: RangeTrie) -> TrieStats:
    """Reference census via the public node iterator (the old way)."""
    nodes = leaves = 0
    for node in trie.iter_nodes():
        nodes += 1
        leaves += not node.children
    def depth(node):
        return 1 + max((depth(c) for c in node.children.values()), default=0)
    max_depth = 0 if not trie.root.children else max(
        depth(c) for c in trie.root.children.values()
    )
    return TrieStats(nodes, nodes - leaves, leaves, max_depth)


@settings(max_examples=30, deadline=None)
@given(table_strategy())
def test_stats_matches_separate_walks(table):
    trie = RangeTrie.build(table)
    census = trie.stats()
    assert census == walked_stats(trie)
    assert (trie.n_nodes(), trie.n_interior(), trie.n_leaves(), trie.max_depth()) == (
        census.nodes,
        census.interior,
        census.leaves,
        census.max_depth,
    )


def test_stats_empty_trie():
    assert RangeTrie(3, CountAggregator()).stats() == TrieStats(0, 0, 0, 0)


# ---------------------------------------------------------------------------
# range_cubing build_strategy plumbing
# ---------------------------------------------------------------------------


def test_range_cubing_bulk_equals_tuple_cube():
    table = random_table(seed=5)
    for min_support in (1, 3):
        bulk = range_cubing(table, min_support=min_support, build_strategy="bulk")
        tup = range_cubing(table, min_support=min_support, build_strategy="tuple")
        assert bulk.n_dims == tup.n_dims and len(bulk.ranges) == len(tup.ranges)
        by_key = {(r.specific, r.mask): r for r in tup.ranges}
        for r in bulk.ranges:
            assert states_equal(r.state, by_key[(r.specific, r.mask)].state)


def test_range_cubing_detailed_reports_build_phases():
    table = random_table(seed=9, n_rows=80)
    _, stats = range_cubing_detailed(table, build_strategy="bulk")
    assert stats["build_strategy"] == "bulk"
    for key in ("sort_seconds", "group_seconds", "aggregate_seconds"):
        assert stats[key] >= 0.0
    _, stats = range_cubing_detailed(table, build_strategy="tuple")
    assert stats["build_strategy"] == "tuple"
    assert "sort_seconds" not in stats


def test_range_cubing_rejects_unknown_build_strategy():
    table = make_paper_table()
    with pytest.raises(ValueError, match="build_strategy"):
        range_cubing(table, build_strategy="magic")


# ---------------------------------------------------------------------------
# incremental bulk absorption
# ---------------------------------------------------------------------------


def test_insert_table_bulk_equals_streaming():
    table = random_table(seed=13, n_rows=BULK_ABSORB_THRESHOLD + 40)
    agg = SumCountAggregator(0)
    bulk = IncrementalRangeCuber(table.n_dims, agg)
    bulk.insert_table(table, build_strategy="bulk")
    streamed = IncrementalRangeCuber(table.n_dims, agg)
    streamed.insert_table(table, build_strategy="tuple")
    assert bulk.n_rows_absorbed == streamed.n_rows_absorbed == table.n_rows
    assert_tries_equal(bulk.trie, streamed.trie)


def test_bulk_absorption_into_resident_trie():
    # Second batch merges into a non-empty resident trie.
    first = random_table(seed=17, n_rows=90)
    second = random_table(seed=19, n_rows=90)
    agg = SumCountAggregator(0)
    cuber = IncrementalRangeCuber(first.n_dims, agg)
    cuber.insert_table(first)   # auto -> bulk (>= threshold)
    cuber.insert_table(second)
    both = make_encoded_table(
        np.vstack([first.dim_codes, second.dim_codes]),
        measures=np.vstack([first.measures, second.measures]),
    )
    assert_tries_equal(cuber.trie, RangeTrie.build(both, agg))


def test_insert_batch_bulk_equals_per_row():
    rng = np.random.default_rng(23)
    rows = [tuple(int(v) for v in r) for r in rng.integers(0, 4, size=(100, 3))]
    measures = [(float(i),) for i in range(len(rows))]
    bulk = IncrementalRangeCuber(3, SumCountAggregator(0))
    bulk.insert_batch(rows, measures, build_strategy="bulk")
    loop = IncrementalRangeCuber(3, SumCountAggregator(0))
    loop.insert_batch(rows, measures, build_strategy="tuple")
    assert bulk.n_rows_absorbed == loop.n_rows_absorbed == len(rows)
    assert_tries_equal(bulk.trie, loop.trie)


def test_insert_batch_small_batch_streams():
    cuber = IncrementalRangeCuber(2, CountAggregator())
    cuber.insert_batch([(0, 1), (0, 1), (1, 0)])  # < threshold -> per-row
    assert cuber.n_rows_absorbed == 3
    assert cuber.trie.total_agg == (3,)


def test_insert_paths_reject_unknown_strategy():
    cuber = IncrementalRangeCuber(2, CountAggregator())
    with pytest.raises(ValueError, match="build_strategy"):
        cuber.insert_batch([(0, 1)], build_strategy="magic")
    with pytest.raises(ValueError, match="build_strategy"):
        cuber.insert_table(make_encoded_table([[0, 1]]), build_strategy="magic")


def test_engine_append_large_batch_equals_recompute():
    base = random_table(seed=29, n_rows=50, n_dims=3)
    cuber = IncrementalRangeCuber(base.n_dims, SumCountAggregator(0))
    cuber.insert_table(base)
    engine = QueryEngine(cuber, base.schema)
    extra_codes = np.random.default_rng(31).integers(0, 6, size=(100, 3))
    extra_meas = [(float(i % 7),) for i in range(100)]
    engine.append([tuple(int(v) for v in r) for r in extra_codes], extra_meas)
    combined = make_encoded_table(
        np.vstack([base.dim_codes, extra_codes]),
        measures=np.vstack([base.measures, np.asarray(extra_meas)]),
    )
    expected = range_cubing(combined, aggregator=SumCountAggregator(0))
    got = engine.snapshot().cube
    assert {(r.specific, r.mask) for r in got.ranges} == {
        (r.specific, r.mask) for r in expected.ranges
    }


# ---------------------------------------------------------------------------
# micro-fix regressions
# ---------------------------------------------------------------------------


def test_insert_assignment_accepts_unsorted_pairs():
    trie = RangeTrie(3, CountAggregator())
    trie.insert_assignment([(2, 1), (0, 4)], (1,))
    trie.insert_assignment([(0, 4), (2, 1)], (1,))
    trie.check_invariants()
    assert trie.total_agg == (2,)


def test_fallback_guard_detects_overridden_algebra():
    assert not Aggregator()._scalar_algebra_overridden()
    assert not MinAggregator()._scalar_algebra_overridden()  # specs-driven
    # These redefine the scalar algebra; SumCountAggregator also ships
    # matching batch kernels, TopKAvg relies on the per-row fallback.
    assert SumCountAggregator()._scalar_algebra_overridden()
    assert TopKAvgAggregator(k=2)._scalar_algebra_overridden()
