"""Unit tests for the Range / RangeCube representation (paper Section 4)."""

import pytest
from hypothesis import given, settings

from repro.core.range_cube import Range, RangeCube
from repro.core.range_cubing import range_cubing
from repro.cube.cell import specializes
from repro.table.aggregates import SumCountAggregator

from tests.conftest import make_paper_table, table_strategy


def test_range_endpoints_and_cells():
    # The paper's example range [(S1,*,P1,*), (S1,C1,P1,D1)]:
    r = Range((0, 0, 0, 0), mask=0b1010, state=(1, 100.0))
    assert r.general == (0, None, 0, None)
    assert r.n_marked == 2
    assert r.n_cells == 4
    assert set(r.cells()) == {
        (0, None, 0, None),
        (0, 0, 0, None),
        (0, None, 0, 0),
        (0, 0, 0, 0),
    }


def test_range_contains():
    r = Range((0, 0, 0, 0), mask=0b1010, state=(1,))
    assert r.contains((0, None, 0, None))
    assert r.contains((0, 0, 0, 0))
    assert not r.contains((0, 1, 0, 0))  # wrong value on marked dim
    assert not r.contains((None, None, 0, None))  # fixed dim relaxed
    assert not r.contains((0, None, None, None))  # fixed dim relaxed


def test_range_endpoints_satisfy_partial_order():
    r = Range((0, 1, None, 2), mask=0b0010, state=(1,))
    assert specializes(r.specific, r.general)
    for cell in r.cells():
        assert specializes(cell, r.general)
        assert specializes(r.specific, cell)


def test_range_tuple_notation():
    r = Range((5, None, 7), mask=0b100, state=(1,))
    assert r.to_string() == "(5, *, 7')"


def test_range_equality_and_hash():
    a = Range((1, None), 0b01, (2,))
    b = Range((1, None), 0b01, (2,))
    c = Range((1, None), 0b00, (2,))
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != "not a range"


def test_cube_sizes_and_ratio():
    ranges = [Range((None, None), 0, (3,)), Range((1, 2), 0b10, (1,))]
    cube = RangeCube(2, SumCountAggregator(), ranges)
    assert cube.n_ranges == len(cube) == 2
    assert cube.n_cells == 1 + 2
    assert cube.tuple_ratio() == pytest.approx(2 / 3)
    assert cube.tuple_ratio(10) == pytest.approx(0.2)


def test_cube_value_finalizes():
    table = make_paper_table()
    cube = range_cubing(table)
    enc = table.encoder.encoders
    cell = (enc[0].encode_existing("S1"), None, None, None)
    assert cube.value(cell) == {"count": 2, "sum": 600.0}
    assert cube.value((enc[0].encode_existing("S3"), 0, None, None)) is None


def test_to_materialized_roundtrip():
    table = make_paper_table()
    cube = range_cubing(table)
    materialized = cube.to_materialized()
    assert len(materialized) == cube.n_cells
    for r in cube:
        for cell in r.cells():
            assert materialized.lookup(cell) == r.state


def test_sorted_strings_limit():
    table = make_paper_table()
    cube = range_cubing(table)
    assert len(cube.sorted_strings(limit=5)) == 5
    assert cube.sorted_strings() == sorted(cube.sorted_strings())


def test_repr():
    cube = RangeCube(3, SumCountAggregator(), [])
    assert "0 ranges" in repr(cube)


def test_empty_cube_ratio_defined():
    cube = RangeCube(2, SumCountAggregator(), [])
    assert cube.tuple_ratio() == 1.0


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_convexity_of_every_range(table):
    # Definition 3: a partition by ranges is convex — every cell between
    # the endpoints belongs to the same part.  Here: cells() enumerates
    # exactly the specializes-sandwiched cells.
    cube = range_cubing(table)
    for r in cube.ranges[:40]:
        cells = set(r.cells())
        assert len(cells) == r.n_cells
        for cell in cells:
            assert r.contains(cell)
            assert specializes(r.specific, cell)
            assert specializes(cell, r.general)


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_n_cells_equals_expansion_length(table):
    cube = range_cubing(table)
    assert cube.n_cells == sum(1 for _ in cube.expand())
