"""Unit + property tests for the QC-tree class index."""

import pytest
from hypothesis import given, settings

from repro.baselines.qc_tree import QCTree
from repro.baselines.quotient import quotient_cube
from repro.cube.full_cube import compute_full_cube

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_build_indexes_every_class():
    table = make_paper_table()
    quotient = quotient_cube(table)
    tree = QCTree.from_quotient(quotient)
    assert tree.n_classes == quotient.n_classes
    assert dict(tree.classes()) == quotient.classes


def test_prefix_sharing_saves_nodes():
    table = make_paper_table()
    quotient = quotient_cube(table)
    tree = QCTree.from_quotient(quotient)
    path_pairs = sum(
        sum(1 for v in upper if v is not None) for upper in quotient.classes
    )
    assert tree.n_nodes() < path_pairs  # prefixes shared


def test_lookup_every_cell_of_the_paper_cube():
    table = make_paper_table()
    tree = QCTree.build(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert tree.lookup(cell)[0] == state[0]


def test_lookup_empty_cell():
    table = make_paper_table()
    tree = QCTree.build(table)
    assert tree.lookup((2, 0, None, None)) is None
    assert tree.class_of((0, 0, 2, 1)) is None


def test_class_of_returns_closed_upper_bound():
    table = make_paper_table()
    tree = QCTree.build(table)
    enc = table.encoder.encoders
    s1 = enc[0].encode_existing("S1")
    upper, state = tree.class_of((s1, None, None, None))
    # S1 implies C1: the class upper bound binds the city too.
    assert upper[0] == s1
    assert upper[1] == enc[1].encode_existing("C1")
    assert state[0] == 2


def test_wrong_arity_rejected():
    tree = QCTree.build(make_encoded_table([(0, 1)]))
    with pytest.raises(ValueError):
        tree.lookup((0,))


def test_insert_is_idempotent_per_bound():
    tree = QCTree(2, quotient_cube(make_encoded_table([(0, 1)])).aggregator)
    tree.insert((0, 1), (1,))
    tree.insert((0, 1), (1,))
    assert tree.n_classes == 1


def test_apex_class_reachable():
    table = make_encoded_table([(0, 0), (1, 1)])
    tree = QCTree.build(table)
    state = tree.lookup((None, None))
    assert state[0] == 2


@settings(max_examples=35, deadline=None)
@given(table_strategy(max_rows=14, max_dims=4))
def test_qc_tree_lookup_matches_oracle(table):
    tree = QCTree.build(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert tree.lookup(cell)[0] == state[0]


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=12, max_dims=3))
def test_qc_tree_agrees_with_quotient_scan(table):
    quotient = quotient_cube(table)
    tree = QCTree.from_quotient(quotient)
    oracle = compute_full_cube(table)
    for cell in oracle.iter_cells():
        by_tree = tree.class_of(cell)
        by_scan = quotient.class_of(cell)
        assert by_tree is not None
        assert by_tree[0] == by_scan
