"""The telemetry subsystem: registry, tracing, slow log, end-to-end wiring."""

import json
import threading

import pytest

import repro.obs as obs
from repro.metrics.histogram import LatencyHistogram
from repro.obs import (
    MetricRegistry,
    SlowQueryLog,
    Tracer,
    get_registry,
    get_tracer,
    parse_prometheus_text,
    set_enabled,
)

from tests.conftest import make_paper_table


@pytest.fixture(autouse=True)
def clean_obs():
    """Tests share the process-wide registry/tracer; isolate their values."""
    obs.reset()
    set_enabled(True)
    yield
    obs.reset()
    set_enabled(True)


# ----------------------------------------------------------------------
# metric registry
# ----------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricRegistry()
    requests = registry.counter("requests_total", "Requests.", ("op",))
    requests.inc(op="point")
    requests.inc(2, op="slice")
    assert requests.value(op="point") == 1
    assert requests.value(op="slice") == 2
    with pytest.raises(ValueError):
        requests.inc(-1, op="point")
    with pytest.raises(ValueError):
        requests.inc(op="point", extra="nope")  # wrong label set

    depth = registry.gauge("depth", "Depth.")
    depth.set(5)
    depth.dec()
    assert depth.value() == 4

    seconds = registry.histogram("seconds", "Latency.", ("op",))
    for value in (0.001, 0.002, 0.004):
        seconds.observe(value, op="point")
    assert seconds.value(op="point") == 3  # histogram value() is the count
    assert 0.0005 < seconds.percentile(50, op="point") < 0.01


def test_registration_is_idempotent_and_mismatch_raises():
    registry = MetricRegistry()
    a = registry.counter("hits_total", "Hits.", ("op",))
    assert registry.counter("hits_total", "Hits.", ("op",)) is a
    with pytest.raises(ValueError):
        registry.gauge("hits_total", "Hits.", ("op",))  # kind mismatch
    with pytest.raises(ValueError):
        registry.counter("hits_total", "Hits.", ("other",))  # label mismatch
    with pytest.raises(ValueError):
        registry.counter("bad name", "Nope.")


def test_concurrent_increments_are_exact():
    registry = MetricRegistry()
    counter = registry.counter("n_total", "N.", ("who",))
    seconds = registry.histogram("s", "S.")
    n_threads, n_incs = 8, 2000
    barrier = threading.Barrier(n_threads)

    def worker(who: str) -> None:
        bound = counter.labels(who=who)
        barrier.wait()
        for _ in range(n_incs):
            bound.inc()
            counter.inc(who="shared")
            seconds.observe(0.001)

    threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value(who="shared") == n_threads * n_incs
    for i in range(n_threads):
        assert counter.value(who=f"t{i}") == n_incs
    assert seconds.value() == n_threads * n_incs


def test_registry_to_dict_merge_roundtrip():
    worker = MetricRegistry()
    worker.counter("jobs_total", "Jobs.", ("kind",)).inc(3, kind="build")
    worker.gauge("level", "Level.").set(2)
    hist = worker.histogram("lat", "Lat.")
    hist.observe(0.01)
    hist.observe(0.02)

    parent = MetricRegistry()
    parent.counter("jobs_total", "Jobs.", ("kind",)).inc(kind="build")
    parent.merge(worker.to_dict())
    parent.merge(worker.to_dict())
    assert parent.get("jobs_total").value(kind="build") == 7
    assert parent.get("level").value() == 4  # gauges add on merge
    assert parent.get("lat").value() == 4


def test_latency_histogram_dict_roundtrip():
    hist = LatencyHistogram()
    for value in (0.0001, 0.001, 0.01, 0.1, 1.0):
        hist.record(value)
    clone = LatencyHistogram.from_dict(hist.to_dict())
    assert clone.count == hist.count
    assert clone.total == pytest.approx(hist.total)
    assert clone._buckets == hist._buckets
    for p in (50, 95, 99):
        assert clone.percentile(p) == hist.percentile(p)
    empty = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
    assert empty.count == 0 and empty.to_dict()["min"] is None


def test_collector_runs_at_scrape_and_dead_ones_drop():
    registry = MetricRegistry()
    gauge = registry.gauge("entries", "Entries.")
    state = {"entries": 7, "dead": False}

    def collect():
        if state["dead"]:
            raise LookupError
        gauge.set(state["entries"])

    registry.register_collector(collect)
    assert 'entries 7' in registry.render_prometheus()
    state["entries"] = 9
    assert 'entries 9' in registry.render_prometheus()
    state["dead"] = True
    registry.render_prometheus()  # drops the collector, does not raise
    state["dead"] = False
    state["entries"] = 11
    assert 'entries 9' in registry.render_prometheus()  # no longer collected


def test_prometheus_rendering_golden():
    registry = MetricRegistry()
    hits = registry.counter("cube_hits_total", "Cache hits.", ("op",))
    hits.inc(3, op="point")
    hits.inc(op='sl"ice\n')  # escaping
    registry.gauge("cube_version", "Version.").set(2)
    registry.histogram("lat_seconds", "Latency.", min_value=0.001, growth=10.0)
    assert registry.render_prometheus() == (
        '# HELP cube_hits_total Cache hits.\n'
        '# TYPE cube_hits_total counter\n'
        'cube_hits_total{op="point"} 3\n'
        'cube_hits_total{op="sl\\"ice\\n"} 1\n'
        '# HELP cube_version Version.\n'
        '# TYPE cube_version gauge\n'
        'cube_version 2\n'
        '# HELP lat_seconds Latency.\n'
        '# TYPE lat_seconds histogram\n'
    )


def test_prometheus_histogram_samples_are_cumulative_and_parse():
    registry = MetricRegistry()
    lat = registry.histogram("lat_seconds", "Latency.", ("op",))
    for value in (0.001, 0.001, 0.5):
        lat.observe(value, op="point")
    text = registry.render_prometheus()
    families = parse_prometheus_text(text)
    samples = families["lat_seconds"]["samples"]
    buckets = [(l["le"], v) for n, l, v in samples if n == "lat_seconds_bucket"]
    counts = [v for _, v in buckets]
    assert counts == sorted(counts)  # cumulative
    assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 3
    assert next(v for n, _, v in samples if n == "lat_seconds_count") == 3
    assert next(v for n, _, v in samples if n == "lat_seconds_sum") == pytest.approx(
        0.502
    )


def test_parse_prometheus_text_rejects_malformed():
    for bad in (
        "# NOPE x y\n",
        "metric{op=point} 1\n",  # unquoted label value
        "metric 1 2 3\n",
        "metric nan-ish\n",
    ):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------


def test_span_nesting_links_parent_and_trace_ids():
    tracer = Tracer()
    with tracer.span("root", kind="test") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild") as grandchild:
                pass
        with tracer.span("sibling") as sibling:
            pass
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    assert sibling.parent_id == root.span_id
    assert {s.trace_id for s in (root, child, grandchild, sibling)} == {root.trace_id}
    assert root.parent_id is None
    # Finished spans land innermost-first; durations nest.
    names = [s.name for s in tracer.buffer.spans()]
    assert names == ["grandchild", "child", "sibling", "root"]
    assert root.duration >= child.duration >= grandchild.duration

    with tracer.span("next-root") as other:
        pass
    assert other.trace_id != root.trace_id


def test_span_records_error_attribute():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("no")
    (span,) = tracer.buffer.spans()
    assert span.attributes["error"] == "RuntimeError"


def test_record_span_synthesizes_children():
    tracer = Tracer()
    with tracer.span("stage") as stage:
        tracer.record_span(
            "worker", start_wall=stage.start_wall, duration=0.25,
            attributes={"partition": 1}, parent=stage,
        )
    worker, recorded_stage = tracer.buffer.spans()
    assert worker.parent_id == recorded_stage.span_id
    assert worker.trace_id == recorded_stage.trace_id
    assert worker.duration == 0.25
    assert worker.attributes == {"partition": 1}


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    set_enabled(False)
    with tracer.span("invisible") as span:
        span.set_attribute("x", 1)  # noop span absorbs the protocol
    tracer.record_span("also-invisible", start_wall=0.0, duration=1.0)
    assert tracer.buffer.spans() == []


def test_trace_buffer_is_bounded_and_limit_keeps_newest():
    tracer = Tracer(capacity=4)
    for i in range(10):
        with tracer.span(f"s{i}"):
            pass
    names = [s.name for s in tracer.buffer.spans()]
    assert names == ["s6", "s7", "s8", "s9"]
    assert [s.name for s in tracer.buffer.spans(limit=2)] == ["s8", "s9"]


def test_chrome_export_schema():
    tracer = Tracer()
    with tracer.span("root", rows=6):
        with tracer.span("child"):
            pass
    trace = tracer.buffer.export_chrome()
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert len(trace["traceEvents"]) == 2
    for event in trace["traceEvents"]:
        assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert event["ph"] == "X"
        assert event["ts"] > 1e15  # wall-clock microseconds
    root_event = next(e for e in trace["traceEvents"] if e["name"] == "root")
    assert root_event["args"]["rows"] == 6
    json.dumps(trace)  # must be directly serializable


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------


def test_slow_log_threshold_and_sampling():
    log = SlowQueryLog(threshold=0.01, capacity=8, sample=2)
    assert log.record(0.005, {"op": "point"}) is False  # under threshold
    for i in range(6):
        assert log.record(0.05, {"op": "point", "i": i}, op="point") is True
    assert log.seen == 6
    kept = log.entries()
    assert [e["request"]["i"] for e in kept] == [0, 2, 4]  # every 2nd retained
    assert kept[0]["op"] == "point" and kept[0]["duration_s"] == 0.05
    log.clear()
    assert log.seen == 0 and log.entries() == []


def test_slow_log_ring_is_bounded():
    log = SlowQueryLog(threshold=0.0, capacity=3)
    for i in range(10):
        log.record(1.0, {"i": i})
    assert [e["request"]["i"] for e in log.entries()] == [7, 8, 9]


def test_slow_log_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SlowQueryLog(threshold=-1)
    with pytest.raises(ValueError):
        SlowQueryLog(capacity=0)
    with pytest.raises(ValueError):
        SlowQueryLog(sample=0)


# ----------------------------------------------------------------------
# end-to-end wiring
# ----------------------------------------------------------------------


def test_served_query_produces_span_with_cache_hit_attribute():
    from repro.serve import QueryEngine

    engine = QueryEngine.from_table(make_paper_table())
    tracer = get_tracer()
    tracer.buffer.clear()
    request = {"op": "point", "cell": [0, None, None, None]}
    engine.execute(request)
    engine.execute(request)
    spans = [s for s in tracer.buffer.spans() if s.name == "serve.request"]
    assert len(spans) == 2
    assert spans[0].attributes == {"op": "point", "cache_hit": False, "version": 0}
    assert spans[1].attributes["cache_hit"] is True
    requests = get_registry().get("repro_requests_total")
    assert requests.value(op="point") == 2
    assert get_registry().get("repro_cache_hits_total").value() == 1
    assert get_registry().get("repro_cache_misses_total").value() == 1
    assert get_registry().get("repro_request_seconds").value(op="point") == 2


def test_engine_collector_exposes_cache_and_version_gauges():
    from repro.serve import QueryEngine

    engine = QueryEngine.from_table(make_paper_table())
    engine.execute({"op": "point", "cell": [0, None, None, None]})
    engine.append([[0, 0, 0, 0]], [[1.0]])
    text = get_registry().render_prometheus()
    families = parse_prometheus_text(text)
    by_family = {
        name: {tuple(sorted(l.items())): v for _, l, v in fam["samples"]}
        for name, fam in families.items()
    }
    key = (("engine", "default"),)
    assert by_family["repro_cube_version"][key] == 1
    assert by_family["repro_cache_entries"][key] >= 0
    assert by_family["repro_rows_resident"][key] == engine.stats()["rows_absorbed"]
    assert get_registry().get("repro_appends_total").value() == 1
    assert get_registry().get("repro_cube_refreshes_total").value() == 1


def test_disabled_obs_skips_serving_telemetry():
    from repro.serve import QueryEngine

    engine = QueryEngine.from_table(make_paper_table())
    get_tracer().buffer.clear()
    set_enabled(False)
    engine.execute({"op": "point", "cell": [0, None, None, None]})
    assert get_registry().get("repro_requests_total").value(op="point") == 0
    assert [s for s in get_tracer().buffer.spans() if s.name == "serve.request"] == []


def test_range_cubing_emits_phase_spans_and_metrics():
    from repro.core.range_cubing import range_cubing_detailed

    tracer = get_tracer()
    tracer.buffer.clear()
    cube, stats = range_cubing_detailed(make_paper_table())
    spans = {s.name: s for s in tracer.buffer.spans()}
    root = spans["range_cubing"]
    for name in ("build", "sort", "group", "aggregate", "traverse", "stats"):
        assert spans[name].trace_id == root.trace_id
    assert spans["build"].parent_id == root.span_id
    assert spans["sort"].parent_id == spans["build"].span_id
    assert root.attributes["trie_nodes"] == stats["trie_nodes"]
    phase = get_registry().get("repro_build_phase_seconds")
    assert phase.value(phase="build") == 1
    assert phase.value(phase="traverse") == 1
    assert get_registry().get("repro_builds_total").value(strategy="bulk") == 1
    assert get_registry().get("repro_build_rows_total").value() == 6


def test_parallel_engine_folds_worker_timings():
    from repro.core.partitioned import parallel_range_cubing_detailed
    from repro.core.range_cubing import range_cubing

    table = make_paper_table()
    tracer = get_tracer()
    tracer.buffer.clear()
    cube, stats = parallel_range_cubing_detailed(
        table, executor="thread", workers=2, n_partitions=2
    )
    assert sorted((r.specific for r in cube.ranges), key=repr) == sorted(
        (r.specific for r in range_cubing(table).ranges), key=repr
    )
    spans = {s.name for s in tracer.buffer.spans()}
    assert {"parallel_range_cubing", "partition", "build", "merge", "cube"} <= spans
    workers = [s for s in tracer.buffer.spans() if s.name == "partition_build"]
    assert len(workers) == 2
    build_span = next(s for s in tracer.buffer.spans() if s.name == "build")
    assert all(w.parent_id == build_span.span_id for w in workers)
    assert sum(w.attributes["rows"] for w in workers) == table.n_rows
    folded = get_registry().get("repro_partition_build_seconds")
    assert folded.value(executor="thread") == 2
    assert get_registry().get("repro_partitions_built_total").value() == 2


def test_incremental_absorb_counts_by_path():
    from repro.core.incremental import IncrementalRangeCuber

    cuber = IncrementalRangeCuber(4, None)
    cuber.insert_batch([[0, 0, 0, 0]] * 4, [[1.0]] * 4, build_strategy="tuple")
    cuber.insert_batch([[0, 1, 2, 3]] * 100, [[1.0]] * 100, build_strategy="bulk")
    batches = get_registry().get("repro_absorb_batches_total")
    rows = get_registry().get("repro_absorb_rows_total")
    assert batches.value(path="tuple") == 1 and rows.value(path="tuple") == 4
    assert batches.value(path="bulk") == 1 and rows.value(path="bulk") == 100


def test_cli_trace_out_covers_the_build(tmp_path):
    from repro.cli import main as cli_main
    from repro.data.synthetic import zipf_table
    from repro.data.io import write_table_csv

    get_tracer().buffer.clear()
    csv = tmp_path / "t.csv"
    trace_path = tmp_path / "spans.json"
    write_table_csv(zipf_table(3000, 4, 30, 1.3, seed=5), str(csv))
    assert cli_main(["cube", str(csv), "--trace-out", str(trace_path)]) == 0

    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    root = next(e for e in events if e["name"] == "cli.cube")
    cubing = next(e for e in events if e["name"] == "range_cubing")
    # The acceptance bar: the exported trace accounts for >= 95% of the
    # build's wall time, at both levels of the hierarchy.
    assert cubing["dur"] >= 0.95 * root["dur"]
    children = [
        e for e in events if e["args"].get("parent_id") == cubing["args"]["span_id"]
    ]
    assert sum(e["dur"] for e in children) >= 0.95 * cubing["dur"]


def test_workload_driver_reports_per_op_latency():
    from repro.serve import InProcessClient, QueryEngine, WorkloadDriver
    from repro.serve.workload import WorkloadMix

    engine = QueryEngine.from_table(make_paper_table())
    driver = WorkloadDriver(
        lambda: InProcessClient(engine),
        mix=WorkloadMix(point=0.5, rollup=0.5, drilldown=0.0, slice=0.0),
        pool_size=8,
        seed=1,
    )
    report = driver.run(clients=2, requests_per_client=20)
    assert set(report.op_latency) <= {"point", "rollup", "append"}
    assert sum(h.count for h in report.op_latency.values()) == report.total_requests
    assert "point" in report.format()
    workload = get_registry().get("repro_workload_latency_seconds")
    assert workload.value(op="point") == report.op_latency["point"].count
