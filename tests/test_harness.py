"""Unit tests for the experiment harness (tiny presets only)."""

import pytest

from repro.data.synthetic import zipf_table
from repro.harness import ablations
from repro.harness import fig8_dimensionality as fig8
from repro.harness import fig9_skew as fig9
from repro.harness import fig10_sparsity as fig10
from repro.harness import fig11_scalability as fig11
from repro.harness import real_weather
from repro.harness.report import format_table
from repro.harness.runner import measure, preferred_order


def small_table():
    return zipf_table(150, 4, 10, theta=1.5, seed=1)


def test_preferred_order_policies():
    table = zipf_table(200, 3, [50, 2, 10], theta=0.0, seed=1)
    desc = preferred_order(table, "desc")
    asc = preferred_order(table, "asc")
    assert desc == tuple(reversed(asc))
    assert preferred_order(table, None) is None
    with pytest.raises(ValueError):
        preferred_order(table, "sideways")


def test_measure_collects_all_metrics():
    row = measure(small_table(), algorithms=("range", "hcubing", "buc", "star"))
    for key in (
        "range_seconds",
        "hcubing_seconds",
        "buc_seconds",
        "star_seconds",
        "range_tuples",
        "full_cells",
        "tuple_ratio",
        "trie_nodes",
        "htree_nodes",
        "node_ratio",
    ):
        assert key in row, key
    assert 0 < row["tuple_ratio"] <= 1
    assert 0 < row["node_ratio"] <= 1.5


def test_measure_algorithms_agree_on_cell_count():
    row = measure(small_table(), algorithms=("range", "hcubing", "buc", "star"))
    assert row["full_cells"] == row["hcubing_cells"] == row["buc_cells"] == row["star_cells"]


def test_measure_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        measure(small_table(), algorithms=("alien",))


def test_node_ratio_uses_matching_order():
    # with equal policies, no extra H-tree is built and the counts coincide
    row = measure(
        small_table(),
        algorithms=("range", "hcubing"),
        order_policies={"hcubing": "desc"},
    )
    assert row["htree_nodes_same_order"] == row["htree_nodes"]


def test_format_table_alignment_and_missing_values():
    rows = [{"a": 1.0, "b": None}, {"a": 2.5}]
    text = format_table(rows, [("a", "A", ".1f"), ("b", "B", "pct")], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    # title, header, separator, then the data rows
    assert "1.0" in lines[3] and "-" in lines[3]
    assert "2.5" in lines[4]


@pytest.mark.parametrize(
    "module,sweep_key",
    [
        (fig8, "dimensionality"),
        (fig9, "zipf"),
        (fig10, "cardinality"),
        (fig11, "cardinality"),
    ],
)
def test_figure_runs_produce_series(module, sweep_key):
    rows = module.run(preset="tiny", algorithms=("range",))
    assert len(rows) >= 3
    assert all(sweep_key in row for row in rows)
    assert all(row["range_seconds"] >= 0 for row in rows)
    module.print_figure(rows)  # must not raise


def test_weather_run_reports_ratios():
    rows = real_weather.run(preset="tiny")
    (row,) = rows
    assert "time_ratio" in row
    assert 0 < row["tuple_ratio"] < 1
    real_weather.print_figure(rows)


def test_figure_main_cli(capsys):
    fig9.main(["--preset", "tiny", "--algorithms", "range"])
    out = capsys.readouterr().out
    assert "Figure 9(a)" in out
    assert "Figure 9(b)" in out


def test_unknown_preset_exits():
    with pytest.raises(SystemExit):
        fig8.run(preset="galactic")


def test_ablation_dimension_order():
    rows = ablations.dimension_order_ablation(small_table())
    assert {r["order"] for r in rows} == {"desc", "asc", "as-is"}
    cells = {r["full_cells"] for r in rows}
    assert len(cells) == 1  # same cube whatever the order


def test_ablation_iceberg_monotone():
    rows = ablations.iceberg_ablation(small_table(), min_supports=(1, 2, 4))
    sizes = [r["range_tuples"] for r in rows]
    assert sizes == sorted(sizes, reverse=True)


def test_ablation_census():
    tables = {"tiny": small_table()}
    rows = ablations.compression_census(tables)
    (row,) = rows
    assert row["quotient_classes"] <= row["range_tuples"]
    assert row["range_tuples"] <= row["full_cells"]


def test_ablations_main(capsys):
    ablations.main(["--preset", "tiny", "--which", "order"])
    assert "dimension order" in capsys.readouterr().out
