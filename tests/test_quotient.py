"""Unit + property tests for the quotient-cube baseline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.quotient import (
    quotient_class_count_bruteforce,
    quotient_cube,
)
from repro.core.range_cubing import range_cubing
from repro.cube.cell import matches_row, n_bound
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_class_count_on_paper_table():
    table = make_paper_table()
    cube = quotient_cube(table)
    assert cube.n_classes == quotient_class_count_bruteforce(table)
    # strictly fewer classes than cells (69) — the cube is compressible
    assert cube.n_classes < 69


def test_upper_bounds_are_closed_cells():
    table = make_paper_table()
    rows = table.dim_rows()
    cube = quotient_cube(table)
    for upper in cube.upper_bounds():
        cover = [row for row in rows if matches_row(upper, row)]
        assert cover
        # closedness: no free dimension has a value shared by all coverers
        for d in range(table.n_dims):
            if upper[d] is None:
                assert len({row[d] for row in cover}) > 1


def test_base_tuple_classes_have_full_bounds():
    # every distinct base tuple is its own closed cell
    table = make_paper_table()
    cube = quotient_cube(table)
    for row in set(table.dim_rows()):
        assert row in cube.classes


def test_value_finalization():
    table = make_paper_table()
    cube = quotient_cube(table)
    apex_class = min(cube.upper_bounds(), key=n_bound)
    assert cube.value(apex_class)["count"] == 6


def test_min_support_filters_classes():
    table = make_encoded_table([(0, 0), (0, 1), (1, 1)])
    cube = quotient_cube(table, min_support=2)
    assert all(s[0] >= 2 for s in cube.classes.values())
    assert cube.n_classes >= 1


def test_empty_table():
    schema = Schema.from_names(["a"])
    table = BaseTable(schema, np.zeros((0, 1), dtype=np.int64))
    assert quotient_cube(table).n_classes == 0


def test_fully_correlated_table_has_single_nonbase_structure():
    # one repeated tuple: the only class upper bound is the base tuple, and
    # it absorbs the apex.
    table = make_encoded_table([(1, 2), (1, 2)])
    cube = quotient_cube(table)
    assert cube.n_classes == 1
    assert (1, 2) in cube.classes


@settings(max_examples=40, deadline=None)
@given(table_strategy(max_rows=12, max_dims=4))
def test_class_count_matches_bruteforce(table):
    assert quotient_cube(table).n_classes == quotient_class_count_bruteforce(table)


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=12, max_dims=4))
def test_quotient_is_lower_bound_for_range_cube(table):
    # A range never crosses a class (all its cells share one tuple set),
    # so the range cube has at least as many parts as the quotient cube.
    assert range_cubing(table).n_ranges >= quotient_cube(table).n_classes


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=12, max_dims=4))
def test_class_aggregates_match_their_upper_bound_cover(table):
    rows = table.dim_rows()
    cube = quotient_cube(table)
    for upper, state in cube.classes.items():
        cover = sum(1 for row in rows if matches_row(upper, row))
        assert cover == state[0]
