"""Unit + property tests for the BUC baseline."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.buc import buc
from repro.cube.cell import apex_cell, n_bound
from repro.cube.full_cube import compute_full_cube
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_paper_example_matches_oracle():
    table = make_paper_table()
    assert cubes_equal(buc(table).as_dict(), compute_full_cube(table).as_dict())


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    assert len(buc(table)) == 0


def test_apex_counts_all_rows():
    table = make_encoded_table([(0, 0), (1, 1), (1, 0)])
    cube = buc(table)
    assert cube.lookup(apex_cell(2))[0] == 3


def test_iceberg_prunes_sublattice():
    # one lonely tuple + three copies of another: with min_support=2 no
    # cell derived from the lonely tuple's unique values survives
    table = make_encoded_table([(0, 0), (1, 1), (1, 1), (1, 1)])
    cube = buc(table, min_support=2)
    assert all(s[0] >= 2 for _, s in cube.cells())
    assert cube.lookup((0, None)) is None
    assert cube.lookup((1, 1))[0] == 3


def test_iceberg_matches_filtered_oracle():
    table = make_paper_table()
    for min_support in (2, 3, 6):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(buc(table, min_support=min_support).as_dict(), expected)


def test_order_parameter_is_transparent():
    table = make_paper_table()
    oracle = compute_full_cube(table).as_dict()
    for order in [(3, 2, 1, 0), (1, 0, 3, 2)]:
        assert cubes_equal(buc(table, dim_order=order).as_dict(), oracle)


def test_all_cuboid_levels_present():
    table = make_paper_table()
    cube = buc(table)
    levels = {n_bound(c) for c in cube.iter_cells()}
    assert levels == {0, 1, 2, 3, 4}


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_matches_oracle_on_random_tables(table):
    assert cubes_equal(buc(table).as_dict(), compute_full_cube(table).as_dict())


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_iceberg_property(table):
    for min_support in (2, 3):
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(buc(table, min_support=min_support).as_dict(), expected)
