"""Unit tests for CSV IO of tables and range cubes."""

import numpy as np

from repro.core.range_cubing import range_cubing
from repro.data.io import (
    read_range_cube_csv,
    read_table_csv,
    table_from_arrays,
    write_range_cube_csv,
    write_table_csv,
)
from repro.table.aggregates import CountAggregator

from tests.conftest import cubes_equal, make_paper_table


def test_table_roundtrip(tmp_path):
    table = make_paper_table()
    path = tmp_path / "sales.csv"
    write_table_csv(table, path)
    loaded = read_table_csv(path, n_measures=1)
    assert loaded.schema.dimension_names == table.schema.dimension_names
    assert loaded.schema.measure_names == ("price",)
    assert np.array_equal(loaded.dim_codes, table.dim_codes)
    assert np.array_equal(loaded.measures, table.measures)


def test_table_csv_header(tmp_path):
    table = make_paper_table()
    path = tmp_path / "sales.csv"
    write_table_csv(table, path)
    header = path.read_text().splitlines()[0]
    assert header == "store,city,product,date,price"


def test_range_cube_roundtrip(tmp_path):
    table = make_paper_table()
    cube = range_cubing(table)
    path = tmp_path / "cube.csv"
    write_range_cube_csv(cube, path, table.schema.dimension_names)
    loaded = read_range_cube_csv(path)
    assert loaded.n_ranges == cube.n_ranges
    assert cubes_equal(dict(loaded.expand()), dict(cube.expand()))


def test_range_cube_file_uses_paper_notation(tmp_path):
    table = make_paper_table()
    cube = range_cubing(table)
    path = tmp_path / "cube.csv"
    write_range_cube_csv(cube, path)
    text = path.read_text()
    assert "*" in text
    assert "'" in text  # marked coordinates
    assert text.splitlines()[0] == "store,city,product,date,count,sum".replace(
        "store,city,product,date", "d0,d1,d2,d3"
    )


def test_count_only_cube_roundtrip(tmp_path):
    table = make_paper_table()
    cube = range_cubing(table, aggregator=CountAggregator())
    path = tmp_path / "cube.csv"
    write_range_cube_csv(cube, path)
    loaded = read_range_cube_csv(path)
    assert cubes_equal(dict(loaded.expand()), dict(cube.expand()))


def test_table_from_arrays():
    codes = np.array([[0, 1], [1, 0]])
    table = table_from_arrays(codes, np.array([[1.0], [2.0]]), ["x", "y"])
    assert table.schema.dimension_names == ("x", "y")
    assert table.n_measures == 1
    assert table.n_rows == 2
