"""Unit tests for the memory-footprint metrics."""

from repro.baselines.htree import HTree
from repro.baselines.star_cubing import StarTree
from repro.core.range_cubing import range_cubing
from repro.core.range_trie import RangeTrie
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.metrics.memory import (
    htree_bytes,
    memory_report,
    range_cube_bytes,
    range_trie_bytes,
    star_tree_bytes,
)

from tests.conftest import make_paper_table


def test_all_footprints_positive():
    table = make_paper_table()
    assert range_trie_bytes(RangeTrie.build(table)) > 0
    assert htree_bytes(HTree.build(table)) > 0
    assert star_tree_bytes(StarTree.build(table)) > 0
    assert range_cube_bytes(range_cubing(table)) > 0


def test_trie_smaller_than_htree_on_correlated_data():
    # The node-count advantage must show up in bytes as well.
    table = correlated_table(
        600, 5, 30, [FunctionalDependency((0,), (1, 2))], theta=1.0, seed=4
    )
    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    assert trie.n_nodes() < htree.n_nodes()
    assert range_trie_bytes(trie) < htree_bytes(htree)


def test_footprint_grows_with_data():
    small = correlated_table(50, 3, 10, [], seed=1)
    large = correlated_table(500, 3, 10, [], seed=1)
    assert range_trie_bytes(RangeTrie.build(large)) > range_trie_bytes(
        RangeTrie.build(small)
    )


def test_memory_report_keys_and_consistency():
    table = make_paper_table()
    report = memory_report(table)
    assert report["range_trie_nodes"] == 8
    assert report["htree_nodes"] == 20
    assert report["star_tree_nodes"] == 20
    for key, value in report.items():
        assert value > 0, key


def test_shared_states_counted_once():
    # A cube whose ranges share aggregate state objects must not double
    # count them.
    table = make_paper_table()
    cube = range_cubing(table)
    first = range_cube_bytes(cube)
    cube.ranges.append(cube.ranges[0])  # alias an existing range
    second = range_cube_bytes(cube)
    cube.ranges.pop()
    # the alias adds at most the per-range overhead, not a full state copy
    assert second - first < 500
