"""End-to-end tests for the JSON/HTTP serving front end."""

import json
import threading

import pytest

from repro.serve import CubeServer, HTTPCubeClient, QueryEngine
from repro.serve.engine import ServeError

from tests.conftest import make_paper_table


@pytest.fixture
def served():
    engine = QueryEngine.from_table(make_paper_table())
    with CubeServer(engine, port=0) as server:
        client = HTTPCubeClient(server.url)
        yield engine, server, client
        client.close()


def test_healthz_and_stats(served):
    engine, _, client = served
    assert client.healthz() == {"status": "ok", "version": 0}
    stats = client.stats()
    assert stats["version"] == 0 and stats["n_ranges"] == engine.stats()["n_ranges"]


def test_query_matches_in_process_response(served):
    engine, _, client = served
    for request in (
        {"op": "point", "cell": [0, None, None, None]},
        {"op": "rollup", "cell": [0, 0, None, None], "dim": "city"},
        {"op": "drilldown", "cell": [0, None, None, None], "dim": 2},
        {"op": "slice", "cell": [None, 0, 0, None]},
        {"op": "point", "bindings": {"store": 0, "date": 1}},
    ):
        over_http = client.query(request)
        direct = engine.execute(request)
        # JSON round-trips tuples to lists; normalize the oracle the same way.
        expected = json.loads(json.dumps(direct))
        over_http.pop("cached")
        expected.pop("cached")
        assert over_http == expected


def test_append_over_http_refreshes_the_cube(served):
    engine, _, client = served
    before = client.point((0, 0, 0, 0))
    result = client.append([[0, 0, 0, 0]], [[900.0]])
    assert result == {"version": 1, "rows": 1}
    assert engine.version == 1
    after = client.point((0, 0, 0, 0))
    assert after != before


def test_bad_requests_return_400_as_serve_error(served):
    _, _, client = served
    for request in (
        {"op": "cube"},
        {"op": "point", "cell": [0]},
        {"op": "point", "cell": [0, None, None, -1]},
    ):
        with pytest.raises(ServeError):
            client.query(request)
    with pytest.raises(ServeError):
        client.append([[0, 0]], None)  # wrong arity
    with pytest.raises(ServeError):
        client.append("nope", None)  # rows must be a list


def test_unknown_endpoints_and_malformed_bodies(served):
    _, server, client = served
    with pytest.raises(ServeError, match="no such endpoint"):
        client._request("GET", "/nope")
    with pytest.raises(ServeError, match="no such endpoint"):
        client._request("POST", "/nope", {})
    # A raw non-JSON body comes back 400, not a server crash.
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(
            "POST", "/query", body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400 and "invalid JSON" in payload["error"]
    finally:
        conn.close()


def test_concurrent_http_clients(served):
    engine, server, _ = served
    n_clients, n_requests = 4, 25
    errors: list[Exception] = []
    cached_counts: list[int] = []
    barrier = threading.Barrier(n_clients)
    expected = json.loads(json.dumps(engine.point((0, None, None, None))))
    request = {"op": "point", "cell": [0, None, None, None]}

    def worker():
        try:
            cached = 0
            with HTTPCubeClient(server.url) as client:
                barrier.wait()
                for _ in range(n_requests):
                    response = client.query(request)
                    assert response["value"] == expected
                    cached += bool(response["cached"])
            cached_counts.append(cached)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    # Only the very first request per client can race the initial miss.
    assert sum(cached_counts) >= n_clients * (n_requests - 1)


def test_stop_without_start_does_not_hang():
    engine = QueryEngine.from_table(make_paper_table())
    server = CubeServer(engine, port=0)
    server.stop()  # never started: must not deadlock


def test_double_start_rejected():
    engine = QueryEngine.from_table(make_paper_table())
    server = CubeServer(engine, port=0)
    try:
        server.start()
        with pytest.raises(RuntimeError):
            server.start()
    finally:
        server.stop()


def test_client_rejects_non_http_urls():
    with pytest.raises(ValueError):
        HTTPCubeClient("ftp://example.com")
