"""End-to-end tests for the JSON/HTTP serving front end."""

import json
import threading

import pytest

from repro.serve import CubeServer, HTTPCubeClient, QueryEngine
from repro.serve.engine import ServeError

from tests.conftest import make_paper_table


@pytest.fixture
def served():
    engine = QueryEngine.from_table(make_paper_table())
    with CubeServer(engine, port=0) as server:
        client = HTTPCubeClient(server.url)
        yield engine, server, client
        client.close()


def test_healthz_and_stats(served):
    engine, _, client = served
    assert client.healthz() == {"status": "ok", "version": 0}
    stats = client.stats()
    assert stats["version"] == 0 and stats["n_ranges"] == engine.stats()["n_ranges"]


def test_query_matches_in_process_response(served):
    engine, _, client = served
    for request in (
        {"op": "point", "cell": [0, None, None, None]},
        {"op": "rollup", "cell": [0, 0, None, None], "dim": "city"},
        {"op": "drilldown", "cell": [0, None, None, None], "dim": 2},
        {"op": "slice", "cell": [None, 0, 0, None]},
        {"op": "point", "bindings": {"store": 0, "date": 1}},
    ):
        over_http = client.query(request)
        direct = engine.execute(request)
        # JSON round-trips tuples to lists; normalize the oracle the same way.
        expected = json.loads(json.dumps(direct))
        over_http.pop("cached")
        expected.pop("cached")
        assert over_http == expected


def test_append_over_http_refreshes_the_cube(served):
    engine, _, client = served
    before = client.point((0, 0, 0, 0))
    result = client.append([[0, 0, 0, 0]], [[900.0]])
    assert result == {"version": 1, "rows": 1}
    assert engine.version == 1
    after = client.point((0, 0, 0, 0))
    assert after != before


def test_bad_requests_return_400_as_serve_error(served):
    _, _, client = served
    for request in (
        {"op": "cube"},
        {"op": "point", "cell": [0]},
        {"op": "point", "cell": [0, None, None, -1]},
    ):
        with pytest.raises(ServeError):
            client.query(request)
    with pytest.raises(ServeError):
        client.append([[0, 0]], None)  # wrong arity
    with pytest.raises(ServeError):
        client.append("nope", None)  # rows must be a list


def test_unknown_endpoints_and_malformed_bodies(served):
    _, server, client = served
    with pytest.raises(ServeError, match="no such endpoint"):
        client._request("GET", "/nope")
    with pytest.raises(ServeError, match="no such endpoint"):
        client._request("POST", "/nope", {})
    # A raw non-JSON body comes back 400, not a server crash.
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(
            "POST", "/query", body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400 and "invalid JSON" in payload["error"]["message"]
        assert payload["error"]["code"] == "bad_request"
    finally:
        conn.close()


def _raw_get(server, path):
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.headers.get("Content-Type", ""), response.read()
    finally:
        conn.close()


def test_unknown_get_returns_structured_404_json(served):
    _, server, _ = served
    status, content_type, body = _raw_get(server, "/definitely-not-an-endpoint")
    assert status == 404
    assert content_type.startswith("application/json")
    payload = json.loads(body)
    assert payload == {
        "error": {
            "code": "not_found",
            "message": "no such endpoint: GET /definitely-not-an-endpoint",
            "retryable": False,
        }
    }


def test_metrics_endpoint_serves_prometheus_text(served):
    from repro.obs import parse_prometheus_text

    _, server, client = served
    client.query({"op": "point", "cell": [0, None, None, None]})
    status, content_type, body = _raw_get(server, "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    families = parse_prometheus_text(body.decode("utf-8"))  # raises if malformed
    for family in ("repro_requests_total", "repro_request_seconds",
                   "repro_cache_entries", "repro_http_requests_total"):
        assert family in families


def test_trace_endpoint_spans_and_chrome_format(served):
    _, server, client = served
    client.query({"op": "point", "cell": [0, None, None, None]})
    status, content_type, body = _raw_get(server, "/trace")
    assert status == 200 and content_type.startswith("application/json")
    spans = json.loads(body)["spans"]
    assert any(s["name"] == "serve.request" for s in spans)

    status, _, body = _raw_get(server, "/trace?format=chrome&limit=10")
    assert status == 200
    trace = json.loads(body)
    assert len(trace["traceEvents"]) <= 10
    assert all(e["ph"] == "X" for e in trace["traceEvents"])

    status, _, body = _raw_get(server, "/trace?limit=nope")
    assert status == 400 and "limit" in json.loads(body)["error"]["message"]


def test_slowlog_endpoint(served):
    engine, server, client = served
    engine.slow_log.threshold = 0.0  # everything is "slow"
    try:
        client.query({"op": "point", "cell": [0, None, None, None]})
    finally:
        engine.slow_log.threshold = 10.0
    status, _, body = _raw_get(server, "/slowlog")
    assert status == 200
    entries = json.loads(body)["slow_queries"]
    assert entries and entries[-1]["op"] == "point"
    assert entries[-1]["duration_s"] >= 0


def test_concurrent_http_clients(served):
    engine, server, _ = served
    n_clients, n_requests = 4, 25
    errors: list[Exception] = []
    cached_counts: list[int] = []
    barrier = threading.Barrier(n_clients)
    expected = json.loads(json.dumps(engine.point((0, None, None, None))))
    request = {"op": "point", "cell": [0, None, None, None]}

    def worker():
        try:
            cached = 0
            with HTTPCubeClient(server.url) as client:
                barrier.wait()
                for _ in range(n_requests):
                    response = client.query(request)
                    assert response["value"] == expected
                    cached += bool(response["cached"])
            cached_counts.append(cached)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    # Only the very first request per client can race the initial miss.
    assert sum(cached_counts) >= n_clients * (n_requests - 1)


def test_stop_without_start_does_not_hang():
    engine = QueryEngine.from_table(make_paper_table())
    server = CubeServer(engine, port=0)
    server.stop()  # never started: must not deadlock


def test_double_start_rejected():
    engine = QueryEngine.from_table(make_paper_table())
    server = CubeServer(engine, port=0)
    try:
        server.start()
        with pytest.raises(RuntimeError):
            server.start()
    finally:
        server.stop()


def test_client_rejects_non_http_urls():
    with pytest.raises(ValueError):
        HTTPCubeClient("ftp://example.com")
