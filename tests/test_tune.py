"""The self-tuning planner (``dim_order="auto"``): plans, identity, drift.

The load-bearing property: a tuned build must answer every query
identically to an untuned one — same cells, same counts, float sums
equal up to summation-order rounding — across the build entrypoints, the
serving engine, snapshot save/load and the sharded router.  The planner
itself is checked for well-formedness (orders are permutations, value
maps are bijections, JSON round trips) and the serving path for its
drift-triggered replan.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.serve.engine import QueryEngine
from repro.serve.protocol import QueryRequest
from repro.table.aggregates import SumCountAggregator
from repro.tune import (
    DEFAULT_SAMPLE_ROWS,
    TuningPlan,
    plan_codes,
    plan_table,
    resolve_plan,
)

from tests.conftest import cubes_equal, table_strategy


def corr_table(n_rows: int = 400, seed: int = 7):
    table = correlated_table(
        n_rows,
        5,
        [6, 40, 40, 8, 5],
        (FunctionalDependency((0,), (1, 2)),),
        theta=1.2,
        seed=seed,
    )
    # Integer-valued measures: their float sums are exact under any
    # summation order, so engine responses compare with plain ==.
    from repro.table.base_table import BaseTable

    return BaseTable(table.schema, table.dim_codes, np.floor(table.measures))


# ---------------------------------------------------------------------------
# planner well-formedness
# ---------------------------------------------------------------------------


def test_plan_order_is_a_permutation():
    plan = plan_table(corr_table())
    assert sorted(plan.dim_order) == list(range(5))
    assert plan.source in ("as-is", "desc", "asc", "greedy-max", "greedy-min")
    assert plan.sampled_rows <= DEFAULT_SAMPLE_ROWS
    assert plan.candidate_costs  # every candidate was scored
    assert plan.plan_seconds >= 0.0


def test_static_orders_are_always_candidates():
    # Candidates are deduped by order tuple (a static order that ties a
    # greedy one keeps the higher-priority name), so probe two plans whose
    # tables disagree about the winner rather than the full label set.
    plan = plan_table(corr_table())
    assert {"as-is", "desc"} <= set(plan.candidate_costs)
    assert len(plan.candidate_costs) >= 3


def test_trivial_tables_get_identity_plans():
    empty = plan_codes(np.empty((0, 3), dtype=np.int64))
    assert empty.is_identity
    single_dim = plan_codes(np.array([[1], [2]], dtype=np.int64))
    assert single_dim.is_identity_order


def test_value_orders_are_bijections():
    plan = plan_table(corr_table(), value_reorder=True)
    for dim, perm in plan.value_orders.items():
        assert sorted(perm) == list(range(len(perm)))
        # forward then inverse is the identity, in-domain and out
        for code in (*range(len(perm)), len(perm) + 5):
            assert plan.original_value(dim, plan.tuned_value(dim, code)) == code


def test_plan_json_round_trip():
    plan = plan_table(corr_table(), value_reorder=True)
    restored = TuningPlan.from_json(plan.to_json())
    assert restored == plan
    assert restored.dim_order == plan.dim_order
    assert set(restored.value_orders) == set(plan.value_orders)


def test_explain_mentions_order_and_candidates():
    plan = plan_table(corr_table())
    text = plan.explain([f"dim{i}" for i in range(5)])
    assert str(plan.dim_order) in text
    assert plan.source in text


def test_resolve_plan_spellings():
    table = corr_table()
    assert resolve_plan(table, None) == (None, None)
    plan, order = resolve_plan(table, "auto")
    assert isinstance(plan, TuningPlan) and order is None
    assert resolve_plan(table, plan) == (plan, None)
    _, order = resolve_plan(table, (4, 3, 2, 1, 0))
    assert order == (4, 3, 2, 1, 0)
    # an identity sequence resolves to the as-is fast path
    assert resolve_plan(table, (0, 1, 2, 3, 4)) == (None, None)
    with pytest.raises(ValueError, match="sentinel"):
        resolve_plan(table, "fastest")


# ---------------------------------------------------------------------------
# answer identity: build entrypoints
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_auto_expansion_matches_untuned(table):
    plain = dict(range_cubing(table, dim_order=None).expand())
    tuned = dict(range_cubing(table, dim_order="auto").expand())
    assert cubes_equal(plain, tuned)


@settings(max_examples=25, deadline=None)
@given(table_strategy())
def test_value_reordered_expansion_matches_untuned(table):
    plan = plan_table(table, value_reorder=True)
    plain = dict(range_cubing(table, dim_order=None).expand())
    tuned = dict(range_cubing(table, dim_order=plan).expand())
    assert cubes_equal(plain, tuned)


@settings(max_examples=15, deadline=None)
@given(table_strategy(), st.sampled_from(["sum_count", "min"]))
def test_auto_identity_across_aggregators(table, kind):
    from repro.table.aggregates import MinAggregator

    agg = SumCountAggregator(0) if kind == "sum_count" else MinAggregator(0)
    plain = dict(range_cubing(table, aggregator=agg, dim_order=None).expand())
    tuned = dict(range_cubing(table, aggregator=agg, dim_order="auto").expand())
    assert cubes_equal(plain, tuned)


def test_detailed_stats_carry_the_plan():
    table = corr_table()
    _, stats = range_cubing_detailed(table, dim_order="auto")
    assert stats["tuning"]["dim_order"] == list(
        plan_table(table).dim_order
    )
    assert stats["tune_seconds"] >= 0.0
    # planning counts toward the paper's total-run-time metric
    assert stats["total_seconds"] >= stats["tune_seconds"]


def test_parallel_auto_matches_untuned():
    table = corr_table(600)
    from repro.core.partitioned import parallel_range_cubing

    plain = dict(
        parallel_range_cubing(
            table, dim_order=None, executor="serial", n_partitions=3
        ).expand()
    )
    tuned = dict(
        parallel_range_cubing(
            table, dim_order="auto", executor="serial", n_partitions=3
        ).expand()
    )
    assert cubes_equal(plain, tuned)


# ---------------------------------------------------------------------------
# answer identity: serving engine ops
# ---------------------------------------------------------------------------


def _requests(n_dims: int) -> list[QueryRequest]:
    cell = [0] + [None] * (n_dims - 1)
    full = [1 % 3] * n_dims
    return [
        QueryRequest(op="point", cell=cell),
        QueryRequest(op="point", cell=full),
        QueryRequest(op="point", cell=[None] * n_dims),
        QueryRequest(op="drilldown", cell=[None] * n_dims, dim=n_dims - 1),
        QueryRequest(op="rollup", cell=full, dim=0),
        QueryRequest(op="slice", bindings={0: 0}),
        QueryRequest(op="dice", predicates={0: [0, 1], n_dims - 1: [0, 2]}),
    ]


def _strip(response: dict) -> dict:
    return {k: v for k, v in response.items() if k not in ("cached", "version")}


@settings(max_examples=20, deadline=None)
@given(table_strategy(min_rows=4, min_dims=2))
def test_engine_ops_identical_with_auto(table):
    plain = QueryEngine.from_table(table, cache_capacity=0, dim_order=None)
    tuned = QueryEngine.from_table(table, cache_capacity=0, dim_order="auto")
    requests = _requests(table.n_dims)
    for request in requests:
        assert _strip(plain.execute(request)) == _strip(tuned.execute(request))
    batch_plain = [_strip(r) for r in plain.execute_batch(requests)]
    batch_tuned = [_strip(r) for r in tuned.execute_batch(requests)]
    assert batch_plain == batch_tuned


def test_engine_ops_identical_after_appends():
    table = corr_table(300)
    extra = corr_table(200, seed=23)
    plain = QueryEngine.from_table(table, cache_capacity=0, dim_order=None)
    tuned = QueryEngine.from_table(table, cache_capacity=0, dim_order="auto")
    plain.append_table(extra)
    tuned.append_table(extra)
    for request in _requests(table.n_dims):
        assert _strip(plain.execute(request)) == _strip(tuned.execute(request))
    assert tuned.stats()["tuning"] is not None


# ---------------------------------------------------------------------------
# answer identity: persistence (cuber JSON, snapshot store, sharded)
# ---------------------------------------------------------------------------


def test_cuber_json_round_trip_keeps_identity(tmp_path):
    from repro.core.serialize import load_cuber, save_cuber

    table = corr_table(250)
    plan = plan_table(table, value_reorder=True)
    cuber = IncrementalRangeCuber(table.n_dims, SumCountAggregator(0), plan=plan)
    cuber.insert_table(table)
    save_cuber(cuber, tmp_path / "cuber.json")
    restored = load_cuber(tmp_path / "cuber.json", SumCountAggregator(0))
    assert restored.plan == plan
    # the restored cuber keeps absorbing in planned space
    extra = corr_table(120, seed=31)
    cuber.insert_table(extra)
    restored.insert_table(extra)
    assert cubes_equal(
        dict(cuber.cube().expand()), dict(restored.cube().expand())
    )


def test_snapshot_round_trip_keeps_identity(tmp_path):
    from repro.serve.store import CubeStore

    table = corr_table(250)
    store = CubeStore(tmp_path / "cubes", format="snapshot")
    store.create("tuned", table, dim_order="auto")
    engine = store.open_engine("tuned")
    plain = QueryEngine.from_table(table, cache_capacity=0, dim_order=None)
    for request in _requests(table.n_dims):
        assert _strip(plain.execute(request)) == _strip(engine.execute(request))


def test_snapshot_manifest_records_the_plan(tmp_path):
    from repro.core.range_cubing import range_cubing_detailed
    from repro.store.snapshot import inspect_snapshot, write_snapshot

    table = corr_table(250)
    cube, stats = range_cubing_detailed(table, dim_order="auto")
    write_snapshot(cube, tmp_path / "t.snapshot", table.schema, tuning=stats["tuning"])
    info = inspect_snapshot(tmp_path / "t.snapshot")
    assert info["tuning"]["dim_order"] == stats["tuning"]["dim_order"]
    # untuned snapshots simply omit the block
    write_snapshot(
        range_cubing(table, dim_order=None), tmp_path / "u.snapshot", table.schema
    )
    assert inspect_snapshot(tmp_path / "u.snapshot")["tuning"] is None


def test_sharded_scatter_gather_identical_with_auto():
    from repro.serve.sharded import ShardRouter

    table = corr_table(300)
    plain = QueryEngine.from_table(table, cache_capacity=0, dim_order=None)
    with ShardRouter.from_table(table, n_shards=2) as router:
        for request in _requests(table.n_dims):
            mine = _strip(plain.execute(request))
            theirs = _strip(router.execute(request))
            theirs.pop("shards", None)
            assert mine == theirs


# ---------------------------------------------------------------------------
# serving-path drift replan
# ---------------------------------------------------------------------------


def _drifting_cuber():
    narrow = make_encoded(np.column_stack([
        np.arange(200) % 3, np.arange(200) % 5, np.arange(200) % 2,
    ]))
    plan = plan_table(narrow)
    cuber = IncrementalRangeCuber(3, SumCountAggregator(0), plan=plan)
    cuber.insert_table(narrow)
    return narrow, cuber


def make_encoded(codes):
    from tests.conftest import make_encoded_table

    return make_encoded_table(np.asarray(codes, dtype=np.int64))


def test_drift_triggers_replan_and_answers_survive():
    narrow, cuber = _drifting_cuber()
    assert not cuber.maybe_replan()  # nothing drifted yet
    wide = make_encoded(np.column_stack([
        np.arange(150) % 40, np.arange(150) % 5, np.arange(150) % 2,
    ]))
    cuber.insert_table(wide)
    assert cuber.drifted_dims()
    assert cuber.maybe_replan()
    assert cuber.replan_count == 1
    # post-replan the cube equals a from-scratch untuned recompute
    recompute = IncrementalRangeCuber(3, SumCountAggregator(0))
    recompute.insert_table(narrow)
    recompute.insert_table(wide)
    assert cubes_equal(
        dict(cuber.cube().expand()), dict(recompute.cube().expand())
    )
    assert not cuber.maybe_replan()  # the new plan absorbed the drift


def test_engine_append_replans_on_drift():
    narrow, _ = _drifting_cuber()
    engine = QueryEngine.from_table(narrow, cache_capacity=0, dim_order="auto")
    wide = np.column_stack([
        np.arange(150) % 40, np.arange(150) % 5, np.arange(150) % 2,
    ]).tolist()
    engine.append(wide, None)
    assert engine.stats()["tuning"]["replans"] >= 1
    recompute = QueryEngine.from_table(narrow, cache_capacity=0, dim_order=None)
    recompute.append(wide, None)
    for request in _requests(3):
        assert _strip(engine.execute(request)) == _strip(recompute.execute(request))
