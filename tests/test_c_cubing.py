"""Unit + property tests for C-Cubing (closed cubes)."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.c_cubing import _merge_same, closed_cubing
from repro.baselines.quotient import quotient_cube
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_merge_same_keeps_agreement_only():
    assert _merge_same((1, 2, 3), (1, 5, 3)) == (1, None, 3)
    assert _merge_same((1, None), (1, 7)) == (1, None)
    assert _merge_same((None, None), (4, 4)) == (None, None)


def test_closed_cube_equals_quotient_classes_on_paper_table():
    table = make_paper_table()
    closed = closed_cubing(table)
    quotient = quotient_cube(table)
    assert closed.as_dict().keys() == quotient.classes.keys()
    for cell, state in closed.cells():
        assert state[0] == quotient.classes[cell][0]


def test_non_closed_cells_are_absent():
    table = make_paper_table()
    closed = closed_cubing(table)
    enc = table.encoder.encoders
    s1 = enc[0].encode_existing("S1")
    # (S1, *, *, *) is not closed — S1 implies C1 — so only the closed
    # version (S1, C1, *, *) appears.
    assert (s1, None, None, None) not in closed
    assert (s1, enc[1].encode_existing("C1"), None, None) in closed


def test_apex_closedness_depends_on_common_values():
    # No common value anywhere: the apex is closed.
    spread = make_encoded_table([(0, 0), (1, 1)])
    assert (None, None) in closed_cubing(spread)
    # A value common to all rows: the apex collapses into its closure.
    shared = make_encoded_table([(0, 0), (0, 1)])
    closed = closed_cubing(shared)
    assert (None, None) not in closed
    assert (0, None) in closed


def test_min_support_filters_closed_cells():
    table = make_encoded_table([(0, 0), (0, 1), (1, 1)])
    closed = closed_cubing(table, min_support=2)
    assert all(state[0] >= 2 for _, state in closed.cells())
    full = closed_cubing(table)
    expected = {c for c, s in full.cells() if s[0] >= 2}
    assert set(closed.iter_cells()) == expected


def test_empty_table():
    schema = Schema.from_names(["a"])
    table = BaseTable(schema, np.zeros((0, 1), dtype=np.int64))
    assert len(closed_cubing(table)) == 0


def test_closed_cube_is_much_smaller_than_full_cube():
    from repro.cube.full_cube import full_cube_size

    table = make_paper_table()
    assert len(closed_cubing(table)) < full_cube_size(table) / 2


@settings(max_examples=50, deadline=None)
@given(table_strategy(max_rows=14, max_dims=4))
def test_closed_cube_matches_quotient_on_random_tables(table):
    closed = closed_cubing(table)
    quotient = quotient_cube(table)
    assert closed.as_dict().keys() == quotient.classes.keys()
    for cell, state in closed.cells():
        assert state[0] == quotient.classes[cell][0]


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=14, max_dims=4))
def test_iceberg_closed_cube_property(table):
    for min_support in (2, 3):
        closed = closed_cubing(table, min_support=min_support)
        expected = {
            c: s
            for c, s in quotient_cube(table).classes.items()
            if s[0] >= min_support
        }
        assert closed.as_dict().keys() == expected.keys()
