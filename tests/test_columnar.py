"""Tests for the columnar range store: postings, batched lookups, cuboids.

The load-bearing guarantee is *strategy identity*: ``find_batch`` over
the columnar store, the hash-probe index and a plain linear scan must
return the same containing range for every query cell — the seeded
property test below drives all three over random correlated tables,
including all-``*`` and fully-bound cells.  The rest are unit tests for
the memoized cuboid structures, the vectorized state merge, the dice
kernel and the observability counters.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, seed, settings

from repro.core.columnar import (
    COLUMNAR_THRESHOLD,
    MAX_COLUMNAR_DIMS,
    STAR_CODE,
    ColumnarRangeStore,
    prefers_columnar,
)
from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.obs import get_registry

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    states_equal,
    table_strategy,
)


def _scan(cube, cell):
    for r in cube.ranges:
        if r.contains(cell):
            return r
    return None


def _query_cells(table, cube, rng):
    """A query mix: real cells at every mask width, ghosts, apex, full rows."""
    n_dims = table.schema.n_dims
    rows = [tuple(int(v) for v in row) for row in table.dim_rows()]
    cells = [tuple([None] * n_dims)]  # the apex (all-*) cell
    cells.extend(rows[:10])  # fully-bound cells
    for _ in range(60):
        row = rng.choice(rows)
        keep = rng.sample(range(n_dims), rng.randint(1, n_dims))
        cells.append(tuple(v if d in keep else None for d, v in enumerate(row)))
    for _ in range(15):  # ghost cells: values outside every domain
        keep = rng.sample(range(n_dims), rng.randint(1, n_dims))
        cells.append(tuple(999 if d in keep else None for d in range(n_dims)))
    return cells


@pytest.mark.parametrize("rng_seed", [0, 1, 7])
def test_strategies_identical_on_correlated_tables(rng_seed):
    """find_batch == hash probe == linear scan, cell for cell."""
    table = correlated_table(
        400,
        5,
        8,
        [FunctionalDependency((0,), (1, 2))],
        theta=1.2,
        seed=rng_seed,
    )
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    hash_index = RangeCubeIndex(cube, strategy="hash")
    cells = _query_cells(table, cube, random.Random(rng_seed))
    batched = store.find_batch(cells)
    for cell, via_batch in zip(cells, batched):
        assert store.find(cell) is via_batch
        assert hash_index.find(cell) is via_batch
        assert _scan(cube, cell) is via_batch


@seed(20260807)
@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=18, max_dims=4))
def test_property_batched_lookup_matches_oracle(table):
    """Every oracle cell resolves identically through all three strategies."""
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    hash_index = RangeCubeIndex(cube, strategy="hash")
    oracle = compute_full_cube(table)
    cells = [cell for cell, _ in oracle.cells()]
    n_dims = table.schema.n_dims
    cells.append(tuple([None] * n_dims))  # apex, in case the oracle order hides it
    cells.append(tuple([99] * n_dims))  # a fully-bound ghost
    batched = store.find_batch(cells)
    for cell, via_batch in zip(cells, batched):
        assert hash_index.find(cell) is via_batch
        assert _scan(cube, cell) is via_batch
    for cell, state in oracle.cells():
        found = store.find(cell)
        assert found is not None and states_equal(found.state, state)


def test_apex_and_empty_cube_edges():
    table = make_paper_table()
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    apex = (None, None, None, None)
    assert store.find(apex) is _scan(cube, apex)
    assert store.find_batch([apex]) == [_scan(cube, apex)]
    # A miss on a value no posting holds short-circuits to None.
    assert store.find((99, None, None, None)) is None


def test_cuboid_and_sizes_match_python_path():
    table = correlated_table(
        200, 4, 6, [FunctionalDependency((0,), (1,))], theta=1.0, seed=3
    )
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    sizes = store.cuboid_sizes()
    by_loop: dict[int, int] = {}
    for mask in range(1 << table.schema.n_dims):
        cuboid = store.cuboid(mask)
        # Disjointness: every cell appears once, states come straight
        # from the owning range.
        assert len(cuboid) == len(store.cuboid_map(mask))
        by_loop[mask] = len(cuboid)
        assert cubes_equal(cuboid, _cuboid_by_scan(cube, mask))
    assert sizes == {m: n for m, n in by_loop.items() if n}


def _cuboid_by_scan(cube, mask: int):
    """The cuboid as the paper defines it: one projected cell per range
    whose fixed dims fit inside the mask and whose bound dims cover it."""
    out = {}
    for r in cube.ranges:
        bound = 0
        for d, v in enumerate(r.specific):
            if v is not None:
                bound |= 1 << d
        marked = r.mask & bound
        fixed = bound & ~marked
        if (fixed & ~mask) or (mask & ~bound):
            continue
        cell = tuple(
            r.specific[d] if mask >> d & 1 else None for d in range(cube.n_dims)
        )
        out[cell] = r.state
    return out


def test_memoization_reused_across_entry_points():
    table = correlated_table(150, 4, 5, [], theta=1.0, seed=5)
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    assert store.memo_stats()["cuboid_map_masks"] == 0
    first = store.cuboid(0b0011)
    stats = store.memo_stats()
    assert stats["cuboid_map_masks"] == 1 and stats["cuboid_id_masks"] == 1
    # The same mask through cuboid_map and find_batch reuses the memo.
    cmap = store.cuboid_map(0b0011)
    assert store.memo_stats()["cuboid_map_masks"] == 1
    assert len(first) == len(cmap)
    row = tuple(int(v) for v in table.dim_rows()[0])
    cell = (row[0], row[1], None, None)
    store.find_batch([cell] * 8)
    assert store.memo_stats()["cuboid_map_masks"] == 1
    # cuboid_sizes is computed once and then served from the cache.
    sizes = store.cuboid_sizes()
    assert store.memo_stats()["sizes_cached"]
    assert store.cuboid_sizes() == sizes


def test_merge_states_fast_path_matches_exact_merge():
    from functools import reduce

    table = correlated_table(300, 4, 6, [], theta=1.3, seed=9, n_measures=2)
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    assert store._fast_columns is not None
    rng = np.random.default_rng(0)
    for size in (1, 3, 17, len(store)):
        ids = rng.choice(len(store), size=min(size, len(store)), replace=False)
        fast = store.merge_states(ids)
        exact = reduce(
            cube.aggregator.merge, (store.states[int(i)] for i in ids)
        )
        assert states_equal(fast, exact)
    assert store.merge_states(np.empty(0, dtype=np.int64)) is None


def test_dice_ids_matches_predicate_scan():
    table = correlated_table(
        250, 4, 6, [FunctionalDependency((0,), (2,))], theta=1.0, seed=11
    )
    cube = range_cubing(table)
    store = ColumnarRangeStore(cube)
    rows = table.dim_rows()
    base = {0: int(rows[0][0])}
    value_sets = {1: {0, 1, 2}, 3: {0, 1}}
    ids = store.dice_ids(value_sets, base)
    mask = 0b1011
    expected = [
        rid
        for rid, cell in (
            (i, c) for c, i in store.cuboid_map(mask).items()
        )
        if cell[0] == base[0]
        and cell[1] in value_sets[1]
        and cell[3] in value_sets[3]
    ]
    assert sorted(int(i) for i in ids) == sorted(expected)
    # An empty predicate set yields no ids.
    assert store.dice_ids({1: set()}, None).size == 0


def test_prefers_columnar_threshold_and_dim_cap():
    small = range_cubing(make_paper_table())
    assert not prefers_columnar(small)
    assert small.n_ranges < COLUMNAR_THRESHOLD

    class FakeCube:
        ranges = [None] * COLUMNAR_THRESHOLD
        n_dims = MAX_COLUMNAR_DIMS + 1

    assert not prefers_columnar(FakeCube())
    FakeCube.n_dims = MAX_COLUMNAR_DIMS
    assert prefers_columnar(FakeCube())


def test_store_rejects_too_many_dims():
    cube = range_cubing(make_encoded_table([(0, 1)]))
    cube.n_dims = MAX_COLUMNAR_DIMS + 1  # simulate a too-wide cube
    with pytest.raises(ValueError):
        ColumnarRangeStore(cube)


def test_index_len_is_precomputed_and_constant_time():
    """Satellite: __len__ returns the stored count, not a per-call sum."""
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube)
    assert len(index) == cube.n_ranges == index._n_ranges
    # Mutating the list afterwards does not change the frozen count —
    # proof the value was captured at construction.
    cube.ranges.append(cube.ranges[0])
    try:
        assert len(index) == index._n_ranges
    finally:
        cube.ranges.pop()


def test_scan_fallbacks_feed_obs_counter(monkeypatch):
    """Satellite: linear-scan fallbacks land in the process-wide counter."""
    import repro.core.range_index as range_index_module

    counter = get_registry().counter(
        "repro_query_scan_fallbacks_total",
        "Point lookups answered by a linear scan over all ranges.",
    )
    before = counter.value()
    table = make_paper_table()
    cube = range_cubing(table)
    index = RangeCubeIndex(cube, strategy="hash")
    monkeypatch.setattr(range_index_module, "MAX_PROBE_DIMS", 0)
    index.find((0, 0, 0, 0))
    index.find((2, 0, 1, 1))
    assert index.scan_fallbacks == 2
    assert counter.value() == before + 2


def test_index_columnar_strategy_delegates_and_skips_hash_map():
    table = correlated_table(100, 4, 5, [], theta=1.0, seed=2)
    cube = range_cubing(table)
    columnar = RangeCubeIndex(cube, strategy="columnar")
    hashed = RangeCubeIndex(cube, strategy="hash")
    assert columnar.strategy == "columnar" and columnar._store is not None
    assert columnar._by_general == {} and hashed._by_general
    cells = [tuple(int(v) for v in table.dim_rows()[0])]
    cells.append((None,) * 4)
    assert columnar.find_batch(cells) == hashed.find_batch(cells)
    with pytest.raises(ValueError):
        RangeCubeIndex(cube, strategy="bogus")
    with pytest.raises(ValueError):
        columnar.find_batch([(0, 0)])


def test_cube_lookup_batch_and_lazy_columnar():
    table = correlated_table(80, 4, 5, [], theta=1.0, seed=4)
    cube = range_cubing(table)
    assert cube._columnar is None
    store = cube.to_columnar()
    assert cube.to_columnar() is store  # cached
    cells = [tuple(int(v) for v in r) for r in table.dim_rows()[:5]]
    cells.append((99, None, None, None))
    states = cube.lookup_batch(cells)
    for cell, state in zip(cells, states):
        expected = _scan(cube, cell)
        if expected is None:
            assert state is None
        else:
            assert states_equal(state, expected.state)


def test_lazy_lookup_above_threshold_does_not_deadlock():
    """Regression: cube.lookup() on a big cube builds the index under the
    cube lock, and the columnar strategy re-enters it via to_columnar();
    a non-reentrant lock deadlocked here."""
    import threading

    table = correlated_table(3000, 4, 30, [], theta=1.2, seed=1)
    cube = range_cubing(table)
    assert prefers_columnar(cube)
    result = []
    cell = tuple(int(v) for v in table.dim_rows()[0])
    worker = threading.Thread(target=lambda: result.append(cube.lookup(cell)))
    worker.daemon = True
    worker.start()
    worker.join(timeout=30)
    assert not worker.is_alive(), "lazy index build deadlocked"
    assert result and result[0] is not None
    assert cube._columnar is not None
    assert cube._index._store is cube._columnar


def test_pickle_roundtrip_drops_columnar_cache():
    import pickle

    cube = range_cubing(make_paper_table())
    cube.to_columnar()
    clone = pickle.loads(pickle.dumps(cube))
    assert clone._columnar is None
    assert clone.lookup((0, None, None, None)) == cube.lookup((0, None, None, None))


def test_star_code_and_postings_shape():
    cube = range_cubing(make_paper_table())
    store = ColumnarRangeStore(cube)
    assert STAR_CODE == -1
    for d in range(store.n_dims):
        total = sum(len(ids) for ids in store.postings[d].values())
        assert total == len(store)  # every range posted exactly once per dim
        for ids in store.postings[d].values():
            assert ids.dtype == np.int32
            assert np.all(np.diff(ids) > 0)  # sorted, unique
        assert len(store.star_ids(d)) == len(
            store.postings[d].get(STAR_CODE, ())
        )
