"""Unit + property tests for dimension hierarchies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_cubing import range_cubing
from repro.cube.hierarchy import Hierarchy, roll_up_dimension, roll_up_to_levels
from repro.data.synthetic import uniform_table

from tests.conftest import make_encoded_table


def calendar():
    return Hierarchy.calendar(360, days_per_month=30, months_per_year=12)


def test_calendar_structure():
    h = calendar()
    assert h.levels == ("day", "month", "year")
    assert h.n_levels == 3
    assert h.cardinality_at("day") == 360
    assert h.cardinality_at("month") == 12
    assert h.cardinality_at("year") == 1


def test_roll_maps_codes_up():
    h = calendar()
    days = np.array([0, 29, 30, 359])
    assert h.roll(days, "day").tolist() == [0, 29, 30, 359]
    assert h.roll(days, "month").tolist() == [0, 0, 1, 11]
    assert h.roll(days, "year").tolist() == [0, 0, 0, 0]


def test_roll_by_level_index():
    h = calendar()
    assert h.roll(np.array([45]), 1).tolist() == [1]


def test_roll_rejects_out_of_domain_codes():
    h = calendar()
    with pytest.raises(ValueError):
        h.roll(np.array([360]), "month")
    with pytest.raises(IndexError):
        h.roll(np.array([0]), 5)
    with pytest.raises(KeyError):
        h.level_index("week")


def test_constructor_validation():
    with pytest.raises(ValueError):
        Hierarchy(["a", "b"], [])
    with pytest.raises(ValueError):
        Hierarchy(["a", "b"], [np.array([[0]])])
    with pytest.raises(ValueError):
        Hierarchy(["a", "b"], [np.array([-1])])


def test_roll_up_dimension_recodes_and_renames():
    table = make_encoded_table([(5, 0), (35, 1), (65, 1)])
    rolled = roll_up_dimension(table, 0, calendar(), "month")
    assert rolled.dim_codes[:, 0].tolist() == [0, 1, 2]
    assert rolled.schema.dimensions[0].name == "d0@month"
    assert rolled.dim_codes[:, 1].tolist() == [0, 1, 1]  # untouched


def test_roll_up_to_levels_multi():
    table = make_encoded_table([(5, 40), (35, 40)])
    hierarchies = {0: calendar(), 1: calendar()}
    rolled = roll_up_to_levels(table, hierarchies, {0: "month", 1: "year"})
    assert rolled.dim_codes[:, 0].tolist() == [0, 1]
    assert rolled.dim_codes[:, 1].tolist() == [0, 0]
    with pytest.raises(KeyError):
        roll_up_to_levels(table, {}, {0: "month"})


def test_repeated_rollup_names_keep_base():
    table = make_encoded_table([(5, 0)])
    h = calendar()
    monthly = roll_up_dimension(table, 0, h, "month")
    # rolling an already rolled dimension keeps one @level suffix
    again = roll_up_dimension(monthly, 0, Hierarchy(["month", "year"], [np.arange(12) // 12]), "year")
    assert again.schema.dimensions[0].name == "d0@year"


def test_coarser_cube_aggregates_consistently():
    # month-level cell == sum of the corresponding day-level cells
    table = uniform_table(300, 2, [360, 5], seed=3)
    h = calendar()
    day_cube = range_cubing(table)
    month_cube = range_cubing(roll_up_dimension(table, 0, h, "month"))
    month_of = h.mappings[0]
    for (cell, state) in month_cube.expand():
        if cell[0] is None or cell[1] is not None:
            continue
        days = [d for d in range(360) if month_of[d] == cell[0]]
        total_count = 0
        total_sum = 0.0
        for d in days:
            day_state = day_cube.lookup((d, None))
            if day_state is not None:
                total_count += day_state[0]
                total_sum += day_state[1]
        assert state[0] == total_count
        assert state[1] == pytest.approx(total_sum)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.integers(2, 10))
def test_rollup_only_merges_values(n_days, days_per_month):
    h = Hierarchy.calendar(n_days, days_per_month=days_per_month)
    table = uniform_table(60, 2, [n_days, 4], seed=1)
    fine = range_cubing(table)
    coarse = range_cubing(roll_up_dimension(table, 0, h, "month"))
    # merging values cannot create cells: the coarse cube is no larger
    assert coarse.n_cells <= fine.n_cells
    # and both agree on the apex
    assert coarse.lookup((None, None))[0] == fine.lookup((None, None))[0]
