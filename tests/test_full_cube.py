"""Unit tests for the naive full-cube oracle itself."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.cube.cell import apex_cell, cuboid_of
from repro.cube.full_cube import (
    compute_full_cube,
    cuboid_cell_counts,
    full_cube_size,
)
from repro.table.aggregates import CountAggregator
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_encoded_table, make_paper_table, table_strategy


def test_paper_example_cell_values():
    table = make_paper_table()
    cube = compute_full_cube(table)
    enc = table.encoder.encoders
    store = enc[0].encode_existing
    city = enc[1].encode_existing

    # cuboid (Store, *, *, *): three stores with counts 2, 3, 1
    assert cube.value((store("S1"), None, None, None))["count"] == 2
    assert cube.value((store("S2"), None, None, None))["count"] == 3
    assert cube.value((store("S3"), None, None, None))["count"] == 1
    # 2-dimensional cells from Example 1's style
    assert cube.value((store("S2"), city("C1"), None, None))["count"] == 1
    # sums aggregate the price measure
    assert cube.value(apex_cell(4))["sum"] == pytest.approx(4900.0)


def test_number_of_cuboids_and_cells():
    table = make_paper_table()
    cube = compute_full_cube(table)
    sizes = cube.cuboid_sizes()
    assert len(sizes) == 16  # every cuboid of a 4-dim cube is non-empty here
    assert sizes[0] == 1
    assert sum(sizes.values()) == len(cube) == 69


def test_lookup_missing_cell_is_none():
    table = make_encoded_table([(0, 0)])
    cube = compute_full_cube(table)
    assert cube.lookup((1, None)) is None
    assert cube.value((1, 1)) is None


def test_cuboid_extraction():
    table = make_encoded_table([(0, 0), (0, 1)])
    cube = compute_full_cube(table)
    only_first = cube.cuboid(0b01)
    assert set(only_first) == {(0, None)}
    assert all(cuboid_of(c) == 0b01 for c in only_first)


def test_min_support_filters_cells():
    table = make_encoded_table([(0, 0), (0, 1), (1, 0)])
    iceberg = compute_full_cube(table, min_support=2)
    full = compute_full_cube(table)
    expected = {c: s for c, s in full.as_dict().items() if s[0] >= 2}
    assert iceberg.as_dict() == expected


def test_full_cube_size_matches_materialization():
    table = make_paper_table()
    assert full_cube_size(table) == 69
    for min_support in (2, 3):
        assert full_cube_size(table, min_support) == len(
            compute_full_cube(table, min_support=min_support)
        )


def test_cuboid_cell_counts_sum_to_size():
    table = make_paper_table()
    counts = cuboid_cell_counts(table)
    assert sum(counts.values()) == 69
    assert counts[0] == 1


def test_empty_table_has_empty_cube():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    cube = compute_full_cube(table)
    assert len(cube) == 0
    assert full_cube_size(table) == 0


def test_count_aggregator_supported():
    table = make_encoded_table([(0,), (0,), (1,)], n_measures=0)
    cube = compute_full_cube(table, CountAggregator())
    assert cube.value((0,)) == {"count": 2}


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_size_helper_agrees_with_enumeration(table):
    assert full_cube_size(table) == len(compute_full_cube(table))
