"""The public API surface: exports exist, __all__ is honest, docs present."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.cube",
    "repro.table",
    "repro.baselines",
    "repro.data",
    "repro.metrics",
    "repro.harness",
    "repro.exec",
    "repro.serve",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for exported in getattr(module, "__all__", []):
        assert hasattr(module, exported), f"{name}.__all__ lists missing {exported}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_reasonably(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert len(exported) == len(set(exported)), f"duplicates in {name}.__all__"


def test_top_level_covers_the_quickstart_surface():
    import repro

    for needed in (
        "BaseTable",
        "Schema",
        "range_cubing",
        "RangeTrie",
        "RangeCube",
        "CubeQuery",
        "compute_full_cube",
        "print_trie",
        "reduce_trie",
        "IncrementalRangeCuber",
    ):
        assert needed in repro.__all__, needed
        assert hasattr(repro, needed)


def test_public_functions_have_docstrings():
    import repro

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_version_is_set():
    import repro

    assert repro.__version__.count(".") == 2
