"""Unit tests for repro.cube.cell — cells and the roll-up partial order."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube.cell import (
    apex_cell,
    bound_dims,
    cell_str,
    cuboid_of,
    drill_down,
    make_cell,
    matches_row,
    n_bound,
    project_row,
    project_row_mask,
    roll_up,
    specializes,
)


def test_make_cell_and_apex():
    assert make_cell(3) == (None, None, None)
    assert make_cell(3, {1: 7}) == (None, 7, None)
    assert apex_cell(2) == (None, None)


def test_make_cell_bounds_checked():
    with pytest.raises(IndexError):
        make_cell(2, {2: 1})


def test_bound_dims_and_n_bound():
    cell = (1, None, 3)
    assert bound_dims(cell) == (0, 2)
    assert n_bound(cell) == 2
    assert n_bound(apex_cell(4)) == 0


def test_cuboid_of_is_bitmask():
    assert cuboid_of((1, None, 3)) == 0b101
    assert cuboid_of(apex_cell(3)) == 0


def test_specializes_follows_paper_example():
    # Paper Example 2: (S1, C1, *, *) rolls up to (S1, *, *, *).
    s1c1 = (0, 0, None, None)
    s1 = (0, None, None, None)
    assert specializes(s1c1, s1)
    assert not specializes(s1, s1c1)
    # And the chain (S1,C1,P1,D1) -> (S1,C1,P1,*) -> (S1,*,P1,*).
    assert specializes((0, 0, 0, 0), (0, 0, 0, None))
    assert specializes((0, 0, 0, None), (0, None, 0, None))


def test_specializes_is_reflexive():
    cell = (1, None, 2)
    assert specializes(cell, cell)


def test_specializes_requires_equal_values():
    assert not specializes((1, None), (2, None))


def test_roll_up_and_drill_down_invert():
    cell = (1, None, 3)
    up = roll_up(cell, 0)
    assert up == (None, None, 3)
    assert drill_down(up, 0, 1) == cell


def test_roll_up_rejects_free_dim():
    with pytest.raises(ValueError):
        roll_up((None, 1), 0)


def test_drill_down_rejects_bound_dim():
    with pytest.raises(ValueError):
        drill_down((1, None), 0, 2)


def test_project_row_variants_agree():
    row = (4, 5, 6)
    assert project_row(row, [0, 2], 3) == (4, None, 6)
    assert project_row_mask(row, 0b101) == (4, None, 6)
    assert project_row_mask(row, 0) == (None, None, None)


def test_matches_row():
    assert matches_row((4, None, 6), (4, 9, 6))
    assert not matches_row((4, None, 6), (4, 9, 7))


def test_cell_str_plain_and_decoded():
    assert cell_str((1, None)) == "(1, *)"
    assert cell_str((1, None), decode=lambda d, v: f"v{d}{v}") == "(v01, *)"


@given(st.lists(st.one_of(st.none(), st.integers(0, 3)), min_size=1, max_size=6))
def test_partial_order_antisymmetry_and_transitivity(values):
    cell = tuple(values)
    ups = [roll_up(cell, d) for d in bound_dims(cell)]
    for up in ups:
        assert specializes(cell, up)
        # antisymmetry: up never specializes back unless equal
        assert not specializes(up, cell)
        for upper in (roll_up(up, d) for d in bound_dims(up)):
            # transitivity through two roll-ups
            assert specializes(cell, upper)
