"""Round-trip tests for the batch read path: engine, HTTP and clients.

The batch contract: responses come back *in request order*; point
requests on empty cells return an explicit ``"value": null`` (a miss is
an answer, not an error); a malformed item becomes an ``{"error": ...}``
entry at its position without failing the batch; and the whole batch is
answered against one cube snapshot, interacting with the versioned
result cache exactly like the single-request path.
"""

from __future__ import annotations

import pytest

from repro.serve import CubeServer, HTTPCubeClient, InProcessClient, QueryEngine
from repro.serve.engine import ServeError

from tests.conftest import make_paper_table

#: (S3, *, *, *) exists; (S3, C1, *, *) is empty — S3 never sells in C1.
EXISTING = [2, None, None, None]
EMPTY = [2, 0, None, None]


@pytest.fixture
def engine() -> QueryEngine:
    return QueryEngine.from_table(make_paper_table())


@pytest.fixture
def served(engine):
    with CubeServer(engine, port=0) as server:
        with HTTPCubeClient(server.url) as client:
            yield engine, client


def test_batch_order_misses_and_errors(engine):
    requests = [
        {"op": "point", "cell": EXISTING},
        {"op": "point", "cell": EMPTY},  # empty cell -> explicit null
        {"op": "point", "cell": [0, 0]},  # wrong arity -> per-item error
        {"op": "rollup", "cell": [0, 0, None, None], "dim": "city"},
        {"op": "nope"},  # unknown op -> per-item error
        {"op": "point", "cell": EXISTING},  # duplicate: served from cache
    ]
    responses = engine.execute_batch(requests)
    assert len(responses) == len(requests)
    assert responses[0]["value"] == engine.execute(requests[0])["value"]
    assert responses[1]["value"] is None and "error" not in responses[1]
    assert "error" in responses[2] and responses[2]["version"] == engine.version
    assert responses[2]["error"]["code"] == "bad_request"
    assert responses[3]["cell"] == [0, None, None, None]
    assert "unknown op" in responses[4]["error"]["message"]
    assert responses[4]["error"]["retryable"] is False
    assert responses[5]["value"] == responses[0]["value"]
    # Each response records the shared snapshot version.
    assert {r["version"] for r in responses} == {engine.version}


def test_batch_matches_single_request_path(engine):
    requests = [
        {"op": "point", "cell": [0, None, None, None]},
        {"op": "point", "bindings": {"store": 0, "city": 0}},
        {"op": "slice", "cell": [None, 0, 0, None]},
        {"op": "drilldown", "cell": [0, 0, None, None], "dim": "product"},
    ]
    batched = engine.execute_batch(requests)
    for request, via_batch in zip(requests, batched):
        single = engine.execute(request)
        single.pop("cached", None)
        via_batch = dict(via_batch)
        via_batch.pop("cached", None)
        assert via_batch == single


def test_batch_envelope_validation(engine):
    with pytest.raises(ServeError):
        engine.execute_batch({"op": "point"})  # not a list
    too_many = [{"op": "point", "cell": EXISTING}] * (engine.MAX_BATCH + 1)
    with pytest.raises(ServeError):
        engine.execute_batch(too_many)
    assert engine.execute_batch([]) == []


def test_batch_cache_interaction_with_refresh(engine):
    request = {"op": "point", "cell": EXISTING}
    first = engine.execute_batch([request])[0]
    assert first["cached"] is False
    second = engine.execute_batch([request])[0]
    assert second["cached"] is True and second["value"] == first["value"]
    v0 = engine.version

    # An append swaps in a new version: the old cache entry no longer
    # applies, and the batch answers from the fresh snapshot.
    engine.append([[2, 0, 0, 0]], [[50.0]])
    assert engine.version == v0 + 1
    after = engine.execute_batch([request, {"op": "point", "cell": EMPTY}])
    assert after[0]["cached"] is False and after[0]["version"] == v0 + 1
    assert after[0]["value"]["count"] == first["value"]["count"] + 1
    # The formerly-empty cell now has the appended row.
    assert after[1]["value"] is not None and after[1]["value"]["count"] == 1


def test_http_batch_roundtrip(served):
    engine, client = served
    requests = [
        {"op": "point", "cell": EXISTING},
        {"op": "point", "cell": EMPTY},
        {"op": "bogus"},
        {"op": "rollup", "cell": [0, 0, None, None], "dim": "city"},
    ]
    results = client.query_batch(requests)
    assert len(results) == len(requests)
    direct = engine.execute_batch(requests)
    for via_http, via_engine in zip(results, direct):
        via_engine = dict(via_engine)
        # Cache flags differ (the HTTP batch ran second), values must not.
        via_http = {k: v for k, v in via_http.items() if k != "cached"}
        via_engine.pop("cached", None)
        assert via_http == via_engine
    assert results[1]["value"] is None
    assert "error" in results[2]


def test_http_batch_envelope_errors(served):
    _, client = served
    with pytest.raises(ServeError):
        client._request("POST", "/query/batch", {"requests": "nope"})
    with pytest.raises(ServeError):
        client._request("POST", "/query/batch", {})
    response = client._request("POST", "/query/batch", {"requests": []})
    assert response == {"results": [], "count": 0, "protocol": 1}


def test_inprocess_client_and_default_loop_agree(engine):
    requests = [
        {"op": "point", "cell": EXISTING},
        {"op": "point", "cell": [9, 9]},  # malformed -> error entry
        {"op": "point", "cell": EMPTY},
    ]
    via_batch = InProcessClient(engine).query_batch(requests)

    from repro.serve.client import ServingClient

    # The protocol's default implementation loops query(); it must agree
    # with the real batch path item for item.
    looped = ServingClient.query_batch(InProcessClient(engine), requests)
    assert [r.get("value") for r in via_batch] == [r.get("value") for r in looped]
    assert "error" in via_batch[1] and "error" in looped[1]


def test_workload_driver_batched_mode(engine):
    from repro.serve import InProcessClient, WorkloadDriver

    driver = WorkloadDriver(
        lambda: InProcessClient(engine), pool_size=16, seed=5, batch_size=8
    )
    report = driver.run(clients=2, requests_per_client=40)
    assert report.batch_size == 8
    assert report.total_requests == 80
    assert sum(report.op_counts.values()) + report.errors == 80
    assert report.errors == 0
    # Latency is recorded per batch round trip, not per request.
    assert report.latency.count == 80 // 8
    assert "batches of 8" in report.format()
    with pytest.raises(ValueError):
        WorkloadDriver(lambda: InProcessClient(engine), batch_size=0)


def test_batch_metrics_and_span(engine):
    from repro.obs import get_registry, get_tracer

    registry = get_registry()
    batches = registry.counter("repro_query_batches_total", "x")
    items = registry.counter("repro_query_batch_items_total", "x")
    b0, i0 = batches.value(), items.value()
    engine.execute_batch([{"op": "point", "cell": EXISTING}] * 3)
    assert batches.value() == b0 + 1
    assert items.value() == i0 + 3
    spans = get_tracer().buffer.export_json()
    batch_spans = [s for s in spans if s["name"] == "serve.batch"]
    assert batch_spans and batch_spans[-1]["attributes"]["requests"] == 3
