"""Unit tests for the retail star-schema generator."""

import numpy as np
import pytest

from repro.core.range_cubing import range_cubing
from repro.cube.hierarchy import roll_up_dimension
from repro.data.correlated import FunctionalDependency, verify_dependency
from repro.data.retail import CATEGORY, DAY, PRODUCT, REGION, STORE, retail_dataset
from repro.data.synthetic import zipf_table
from repro.table.aggregates import MultiAggregator, SumFunction


def test_schema_shape():
    dataset = retail_dataset(500, seed=1)
    table = dataset.table
    assert table.schema.dimension_names == ("store", "region", "product", "category", "day")
    assert table.schema.measure_names == ("quantity", "revenue")
    assert table.n_rows == 500


def test_entity_dependencies_hold():
    table = retail_dataset(2000, seed=2).table
    assert verify_dependency(table, FunctionalDependency((STORE,), (REGION,)))
    assert verify_dependency(table, FunctionalDependency((PRODUCT,), (CATEGORY,)))


def test_product_popularity_is_skewed():
    table = retail_dataset(5000, product_skew=1.5, seed=3).table
    _, counts = np.unique(table.dim_column(PRODUCT), return_counts=True)
    counts = np.sort(counts)[::-1]
    assert counts[0] > 3 * counts[min(10, len(counts) - 1)]


def test_weekends_are_busier():
    table = retail_dataset(20000, n_days=70, seed=4).table
    days = table.dim_column(DAY)
    weekend = (days % 7 >= 5).sum()
    weekday = (days % 7 < 5).sum()
    # 2 weekend days at double weight vs 5 weekday days: expect ratio ~0.8
    assert weekend / weekday > 0.55


def test_revenue_is_quantity_times_unit_price():
    table = retail_dataset(1000, seed=5).table
    quantity = table.measures[:, 0]
    revenue = table.measures[:, 1]
    # per product, revenue/quantity is a constant (its unit price)
    products = table.dim_column(PRODUCT)
    for product in np.unique(products)[:20]:
        mask = products == product
        unit = revenue[mask] / quantity[mask]
        assert np.allclose(unit, unit[0])


def test_day_hierarchy_attached_and_usable():
    dataset = retail_dataset(800, n_days=360, seed=6)
    monthly = roll_up_dimension(dataset.table, DAY, dataset.day_hierarchy, "month")
    assert monthly.schema.dimensions[DAY].name == "day@month"
    assert monthly.dim_codes[:, DAY].max() < 12


def test_correlation_beats_independent_table():
    dataset = retail_dataset(1500, seed=7)
    correlated_ratio = range_cubing(dataset.table).tuple_ratio()
    independent = zipf_table(
        1500, 5, list(dataset.table.cardinalities), theta=0.8, seed=7
    )
    independent_ratio = range_cubing(independent).tuple_ratio()
    assert correlated_ratio < independent_ratio


def test_multi_measure_cubing_over_retail():
    dataset = retail_dataset(600, seed=8)
    agg = MultiAggregator([(SumFunction(), 0), (SumFunction(), 1)])
    cube = range_cubing(dataset.table, aggregator=agg)
    apex = cube.lookup((None,) * 5)
    assert apex[0] == 600
    assert apex[1] == pytest.approx(dataset.table.measures[:, 0].sum())
    assert apex[2] == pytest.approx(dataset.table.measures[:, 1].sum())


def test_seed_reproducibility():
    a = retail_dataset(300, seed=9).table
    b = retail_dataset(300, seed=9).table
    assert np.array_equal(a.dim_codes, b.dim_codes)
    assert np.array_equal(a.measures, b.measures)
