"""Tests for per-cuboid extraction from a range cube (no full expansion)."""

from hypothesis import given, settings

from repro.baselines.quotient import quotient_cube
from repro.core.range_cubing import range_cubing
from repro.cube.cell import matches_row
from repro.cube.full_cube import compute_full_cube
from repro.cube.lattice import CuboidLattice

from tests.conftest import make_paper_table, table_strategy


def test_cuboid_matches_oracle_on_paper_table():
    table = make_paper_table()
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    for mask in CuboidLattice(table.n_dims):
        assert cube.cuboid(mask) == oracle.cuboid(mask)


def test_cuboid_sizes_match_oracle():
    table = make_paper_table()
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    assert cube.cuboid_sizes() == oracle.cuboid_sizes()
    assert sum(cube.cuboid_sizes().values()) == cube.n_cells


def test_apex_cuboid():
    table = make_paper_table()
    cube = range_cubing(table)
    apex = cube.cuboid(0)
    assert list(apex.values())[0][0] == 6
    assert len(apex) == 1


def test_base_cuboid_has_distinct_tuples():
    table = make_paper_table()
    cube = range_cubing(table)
    base = cube.cuboid((1 << table.n_dims) - 1)
    assert len(base) == table.distinct_tuple_count()


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_cuboid_extraction_property(table):
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    lattice = CuboidLattice(table.n_dims)
    for mask in lattice:
        extracted = cube.cuboid(mask)
        expected = oracle.cuboid(mask)
        assert extracted.keys() == expected.keys()
        for cell in extracted:
            assert extracted[cell][0] == expected[cell][0]


# ---------------------------------------------------------------------------
# quotient-cube lookups (the QC-tree query role)
# ---------------------------------------------------------------------------


def test_quotient_class_of_and_lookup():
    table = make_paper_table()
    qc = quotient_cube(table)
    oracle = compute_full_cube(table)
    rows = table.dim_rows()
    for cell, state in oracle.cells():
        upper = qc.class_of(cell)
        assert upper is not None
        # the class upper bound covers exactly the same tuples as the cell
        cover_cell = {i for i, r in enumerate(rows) if matches_row(cell, r)}
        cover_upper = {i for i, r in enumerate(rows) if matches_row(upper, r)}
        assert cover_cell == cover_upper
        assert qc.lookup(cell)[0] == state[0]


def test_quotient_lookup_empty_cell():
    table = make_paper_table()
    qc = quotient_cube(table)
    assert qc.class_of((2, 0, None, None)) is None
    assert qc.lookup((2, 0, None, None)) is None


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=12, max_dims=3))
def test_quotient_lookup_agrees_with_oracle(table):
    qc = quotient_cube(table)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert qc.lookup(cell)[0] == state[0]
