"""Round-trip tests for the unified algorithm registry."""

import numpy as np
import pytest

from repro.baselines.registry import (
    CubeAlgorithm,
    available_algorithms,
    get_algorithm,
    register,
)
from repro.cube.full_cube import compute_full_cube
from repro.data.synthetic import uniform_table
from repro.table.base_table import BaseTable

EXPECTED_NAMES = (
    "range_cubing",
    "parallel_range_cubing",
    "buc",
    "star_cubing",
    "multiway",
    "hcubing",
    "c_cubing",
    "condensed",
    "quotient",
    "dwarf",
)


def small_table() -> BaseTable:
    table = uniform_table(80, 3, 5, seed=2)
    # integer-valued measures: exact float sums across aggregation orders
    return BaseTable(table.schema, table.dim_codes, np.floor(table.measures * 100))


def test_every_expected_algorithm_is_registered():
    assert set(EXPECTED_NAMES) <= set(available_algorithms())


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_round_trip_matches_full_cube(name):
    table = small_table()
    record = get_algorithm(name)
    result = record.run(table)
    cells = record.cells(result)
    full = compute_full_cube(table).as_dict()
    if record.lossless:
        assert cells == full
    else:
        # condensed representation: every stored cell is a real cube cell
        # with the exact aggregate
        assert cells
        assert all(full.get(cell) == state for cell, state in cells.items())


@pytest.mark.parametrize("name", ("range_cubing", "buc", "star_cubing", "hcubing"))
def test_min_support_filters_cells(name):
    table = small_table()
    record = get_algorithm(name)
    iceberg = record.cells(record.run(table, min_support=4))
    full = compute_full_cube(table, min_support=4).as_dict()
    assert iceberg == full


def test_aliases_resolve_to_canonical_records():
    assert get_algorithm("range") is get_algorithm("range_cubing")
    assert get_algorithm("star") is get_algorithm("star_cubing")
    assert get_algorithm("parallel") is get_algorithm("parallel_range_cubing")
    assert get_algorithm("closed") is get_algorithm("c_cubing")
    assert get_algorithm("Range-Cubing") is get_algorithm("range_cubing")


def test_unknown_name_raises_with_available_list():
    with pytest.raises(KeyError, match="range_cubing"):
        get_algorithm("alien")


def test_unsupported_parameters_raise():
    table = small_table()
    with pytest.raises(ValueError, match="dimension order"):
        get_algorithm("multiway").run(table, dim_order=(2, 1, 0))
    with pytest.raises(ValueError, match="iceberg"):
        get_algorithm("dwarf").run(table, min_support=2)


def test_run_detailed_times_any_algorithm():
    table = small_table()
    _, stats = get_algorithm("buc").run_detailed(table)
    assert stats["total_seconds"] >= 0.0
    _, stats = get_algorithm("range_cubing").run_detailed(table)
    assert "trie_nodes" in stats  # native detailed runner used


def test_register_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register(
            CubeAlgorithm(
                name="buc", runner=lambda table: None, description="dup"
            )
        )
    with pytest.raises(ValueError, match="collides"):
        register(
            CubeAlgorithm(
                name="fresh-name",
                runner=lambda table: None,
                description="alias clash",
                aliases=("range",),
            )
        )
