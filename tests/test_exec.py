"""Unit tests for the pluggable executor abstraction (repro.exec)."""

import pytest

from repro.exec import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    default_workers,
    get_executor,
    resolve_executor,
)

EXECUTOR_CLASSES = (SerialExecutor, ThreadExecutor, ProcessExecutor)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task {x} failed")


@pytest.mark.parametrize("cls", EXECUTOR_CLASSES)
def test_map_preserves_input_order(cls):
    with cls(workers=2) as ex:
        assert ex.map(_square, range(20)) == [i * i for i in range(20)]


@pytest.mark.parametrize("cls", EXECUTOR_CLASSES)
def test_map_empty_and_singleton(cls):
    with cls(workers=2) as ex:
        assert ex.map(_square, []) == []
        assert ex.map(_square, [7]) == [49]


@pytest.mark.parametrize("cls", EXECUTOR_CLASSES)
def test_task_errors_propagate(cls):
    with cls(workers=2) as ex:
        with pytest.raises(RuntimeError, match="failed"):
            ex.map(_boom, [1, 2])


def test_available_executors_lists_all_three():
    assert available_executors() == ("serial", "thread", "process")


def test_get_executor_by_name_and_default():
    assert isinstance(get_executor(None), SerialExecutor)
    assert isinstance(get_executor("serial"), SerialExecutor)
    thread = get_executor("thread", workers=3)
    assert isinstance(thread, ThreadExecutor) and thread.workers == 3
    assert isinstance(get_executor("process"), ProcessExecutor)
    with pytest.raises(ValueError, match="unknown executor"):
        get_executor("gpu")


def test_get_executor_passes_instances_through():
    ex = SerialExecutor()
    assert get_executor(ex) is ex
    with pytest.raises(ValueError, match="cannot override"):
        get_executor(ex, workers=5)


def test_resolve_executor_reports_ownership():
    mine = ThreadExecutor(workers=2)
    resolved, owned = resolve_executor(mine)
    assert resolved is mine and owned is False
    created, owned = resolve_executor("serial")
    assert isinstance(created, SerialExecutor) and owned is True


def test_worker_count_validation_and_default():
    assert default_workers() >= 1
    assert SerialExecutor().workers == 1
    assert ThreadExecutor().workers == default_workers()
    with pytest.raises(ValueError):
        ThreadExecutor(workers=0)


def test_close_is_idempotent():
    ex = ThreadExecutor(workers=2)
    assert ex.map(_square, [1, 2]) == [1, 4]
    ex.close()
    ex.close()
    # a closed pool lazily re-opens on the next map
    assert ex.map(_square, [3, 4]) == [9, 16]


def test_executor_base_is_abstract():
    with pytest.raises(NotImplementedError):
        Executor().map(_square, [1])
