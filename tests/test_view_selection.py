"""Unit + property tests for HRU view selection and the view store."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.full_cube import compute_full_cube, cuboid_cell_counts
from repro.cube.lattice import CuboidLattice
from repro.cube.view_selection import (
    ViewStore,
    _total_cost,
    cuboid_sizes_for_planning,
    greedy_view_selection,
    plan_views,
)
from repro.data.synthetic import zipf_table

from tests.conftest import make_paper_table, table_strategy


def test_sizes_exact_for_small_tables():
    table = make_paper_table()
    sizes = cuboid_sizes_for_planning(table)
    assert sizes == {m: float(c) for m, c in cuboid_cell_counts(table).items()}


def test_greedy_requires_complete_sizes():
    with pytest.raises(ValueError):
        greedy_view_selection({0: 1.0}, 1, 2)


def test_base_always_selected_first():
    table = make_paper_table()
    plan = plan_views(table, k=2)
    assert plan.selected[0] == (1 << table.n_dims) - 1
    assert len(plan.selected) <= 3


def test_benefits_are_monotone_nonincreasing():
    table = zipf_table(300, 4, 8, theta=1.0, seed=2)
    plan = plan_views(table, k=6)
    assert all(
        a >= b for a, b in zip(plan.benefits, plan.benefits[1:])
    ), plan.benefits


def test_each_pick_lowers_total_cost():
    table = zipf_table(300, 4, 8, theta=1.0, seed=2)
    sizes = cuboid_sizes_for_planning(table)
    previous = _total_cost(sizes, {0b1111}, 4)
    selected = {0b1111}
    plan = plan_views(table, k=4)
    for view in plan.selected[1:]:
        selected.add(view)
        current = _total_cost(sizes, selected, 4)
        assert current < previous
        previous = current
    assert plan.total_cost == pytest.approx(previous)


def test_greedy_reaches_63_percent_of_optimal_single_pick():
    # with k=1 the greedy pick IS optimal; verify against exhaustive search
    table = zipf_table(200, 3, 6, theta=0.8, seed=3)
    sizes = cuboid_sizes_for_planning(table)
    base = 0b111
    plan = greedy_view_selection(sizes, 1, 3)
    base_cost = _total_cost(sizes, {base}, 3)
    greedy_cost = plan.total_cost
    best = min(
        _total_cost(sizes, {base, v}, 3) for v in CuboidLattice(3) if v != base
    )
    assert greedy_cost == pytest.approx(best)
    assert greedy_cost <= base_cost


def test_greedy_two_picks_not_worse_than_random_pairs():
    table = zipf_table(200, 3, 6, theta=0.8, seed=4)
    sizes = cuboid_sizes_for_planning(table)
    plan = greedy_view_selection(sizes, 2, 3)
    best_pair = min(
        _total_cost(sizes, {0b111, a, b}, 3)
        for a, b in itertools.combinations(range(7), 2)
    )
    # 1 - 1/e guarantee on benefit; on these tiny lattices greedy is
    # usually optimal — require it to be within 20% of the best pair.
    assert plan.total_cost <= best_pair * 1.2


def test_view_store_answers_match_oracle():
    table = make_paper_table()
    plan = plan_views(table, k=3)
    store = ViewStore(table, plan.selected)
    oracle = compute_full_cube(table)
    for cell, state in oracle.cells():
        assert store.lookup(cell) == state
    assert store.lookup((2, 0, None, None)) is None


def test_view_store_answers_whole_cuboids():
    table = make_paper_table()
    store = ViewStore(table, [(1 << 4) - 1])  # base only: everything derived
    oracle = compute_full_cube(table)
    for mask in CuboidLattice(4):
        assert store.answer_cuboid(mask) == oracle.cuboid(mask)


def test_view_store_always_includes_base():
    table = make_paper_table()
    store = ViewStore(table, [0b0001])
    assert (1 << 4) - 1 in store.masks
    assert store.stored_cells() > 0


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4), st.integers(0, 4))
def test_store_matches_oracle_for_any_selection(table, k):
    plan = plan_views(table, k=k)
    store = ViewStore(table, plan.selected)
    oracle = compute_full_cube(table)
    for cell, state in list(oracle.cells())[::3]:
        assert store.lookup(cell)[0] == state[0]
