"""Unit + property tests for range-level semantics (paper §4, Theorem 1)."""

from hypothesis import given, settings

from repro.core.range_cubing import range_cubing
from repro.core.semantics import (
    check_weak_congruence,
    drill_down_neighbors,
    range_order_edges,
    range_rolls_up_to,
    roll_up_neighbors,
)

from tests.conftest import make_paper_table, table_strategy


def s1_ranges(cube, table):
    """The five Figure 5 ranges (Store = S1), keyed by their notation."""
    s1 = table.encoder.encoders[0].encode_existing("S1")
    return {
        r.to_string(table.encoder): r for r in cube if r.specific[0] == s1
    }


def test_figure_5_roll_up_structure():
    table = make_paper_table()
    cube = range_cubing(table)
    ranges = s1_ranges(cube, table)
    top = ranges["(S1, C1', *, *)"]
    d1 = ranges["(S1, C1', *, D1)"]
    d2 = ranges["(S1, C1', *, D2)"]
    p1 = ranges["(S1, C1', P1, D1')"]
    p2 = ranges["(S1, C1', P2, D2')"]
    # The edges Figure 5 draws:
    assert range_rolls_up_to(d1, top)
    assert range_rolls_up_to(d2, top)
    assert range_rolls_up_to(p1, d1)
    assert range_rolls_up_to(p2, d2)
    assert range_rolls_up_to(p1, top)
    # and the ones it does not:
    assert not range_rolls_up_to(p1, d2)
    assert not range_rolls_up_to(top, d1)
    assert not range_rolls_up_to(d1, d2)


def test_roll_up_is_reflexive_on_endpoints():
    table = make_paper_table()
    cube = range_cubing(table)
    for r in cube.ranges[:10]:
        assert range_rolls_up_to(r, r)


def test_range_order_edges_on_paper_cube():
    table = make_paper_table()
    cube = range_cubing(table)
    edges = range_order_edges(cube)
    index_of = {id(r): i for i, r in enumerate(cube.ranges)}
    ranges = s1_ranges(cube, table)
    p1 = index_of[id(ranges["(S1, C1', P1, D1')"])]
    d1 = index_of[id(ranges["(S1, C1', *, D1)"])]
    assert (p1, d1) in edges
    # edges always point from more specific to more general parts
    for i, j in edges:
        assert range_rolls_up_to(cube.ranges[i], cube.ranges[j])


def test_roll_up_neighbors_of_figure_5_bottom():
    table = make_paper_table()
    cube = range_cubing(table)
    ranges = s1_ranges(cube, table)
    p1 = ranges["(S1, C1', P1, D1')"]
    neighbor_strings = {
        r.to_string(table.encoder) for r in roll_up_neighbors(cube, p1)
    }
    assert "(S1, C1', *, *)" in neighbor_strings
    assert "(S1, C1', *, D1)" in neighbor_strings
    # rolling up Store or Product leaves the S1 region entirely
    assert any(s.startswith("(*") for s in neighbor_strings)


def test_drill_down_neighbors_inverse_of_roll_up():
    table = make_paper_table()
    cube = range_cubing(table)
    ranges = s1_ranges(cube, table)
    top = ranges["(S1, C1', *, *)"]
    down = drill_down_neighbors(cube, top)
    down_strings = {r.to_string(table.encoder) for r in down}
    assert "(S1, C1', *, D1)" in down_strings
    assert "(S1, C1', *, D2)" in down_strings
    for r in down:
        assert range_rolls_up_to(r, top)


def test_weak_congruence_on_paper_cube():
    check_weak_congruence(range_cubing(make_paper_table()))


@settings(max_examples=40, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_theorem_1_partition_is_convex(table):
    # Theorem 1 rests on convexity; check it for random tables.
    check_weak_congruence(range_cubing(table))


@settings(max_examples=25, deadline=None)
@given(table_strategy(max_rows=12, max_dims=3))
def test_order_edges_respect_cell_partial_order(table):
    cube = range_cubing(table)
    for i, j in range_order_edges(cube):
        assert range_rolls_up_to(cube.ranges[i], cube.ranges[j])
        assert not range_rolls_up_to(cube.ranges[j], cube.ranges[i])
