"""Unit tests for the workload driver, mix and report."""

import numpy as np
import pytest

from repro.serve import InProcessClient, QueryEngine, WorkloadDriver
from repro.serve.workload import WorkloadMix, WorkloadReport
from repro.metrics.histogram import LatencyHistogram

from tests.conftest import make_encoded_table, make_paper_table


def _zipf_table(n_rows=200, n_dims=4, cardinality=6, seed=3):
    rng = np.random.default_rng(seed)
    rows = [tuple(int(v) for v in rng.integers(0, cardinality, size=n_dims))
            for _ in range(n_rows)]
    return make_encoded_table(rows)


def test_mix_normalizes_to_one():
    mix = WorkloadMix(point=7, rollup=2, drilldown=1, slice=0)
    weights = mix.normalized()
    assert sum(weights.values()) == pytest.approx(1.0)
    assert weights["point"] == pytest.approx(0.7)
    assert weights["slice"] == 0.0


def test_mix_parse_round_trip():
    mix = WorkloadMix.parse("point=0.5,slice=0.5")
    assert mix.point == 0.5 and mix.slice == 0.5
    assert mix.rollup == 0.0 and mix.drilldown == 0.0
    with pytest.raises(ValueError):
        WorkloadMix.parse("nope=1.0")
    with pytest.raises(ValueError):
        WorkloadMix(point=0, rollup=0, drilldown=0, slice=0).normalized()
    with pytest.raises(ValueError):
        WorkloadMix(point=-1).normalized()


def test_driver_run_in_process():
    engine = QueryEngine.from_table(_zipf_table())
    driver = WorkloadDriver(
        lambda: InProcessClient(engine), pool_size=32, seed=7
    )
    report = driver.run(clients=3, requests_per_client=40)
    assert report.total_requests == 120
    assert sum(report.op_counts.values()) + report.errors == 120
    assert report.errors == 0  # the pool is valid by construction
    assert report.latency.count == 120
    assert report.throughput > 0 and report.wall_seconds > 0
    assert 0.0 <= report.hit_rate <= 1.0
    assert report.cached_responses > 0  # zipf head repeats within 120 requests
    p = report.latency
    assert p.percentile(50) <= p.percentile(95) <= p.percentile(99) <= p.max
    assert report.start_version == 0 and report.end_version == 0
    assert report.engine_stats["version"] == 0


def test_driver_respects_mix():
    engine = QueryEngine.from_table(_zipf_table())
    driver = WorkloadDriver(
        lambda: InProcessClient(engine),
        mix=WorkloadMix(point=1, rollup=0, drilldown=0, slice=0),
        pool_size=16,
        seed=1,
    )
    report = driver.run(clients=2, requests_per_client=30)
    assert set(report.op_counts) == {"point"}
    assert report.op_counts["point"] == 60


def test_driver_pool_is_deterministic():
    engine = QueryEngine.from_table(_zipf_table())
    stats = engine.stats()
    driver = WorkloadDriver(lambda: InProcessClient(engine), pool_size=24, seed=5)
    pool_a = driver._build_pool(stats, np.random.default_rng(5))
    pool_b = driver._build_pool(stats, np.random.default_rng(5))
    assert pool_a == pool_b
    assert len(pool_a) == 24
    n_dims = stats["n_dims"]
    for request in pool_a:
        assert len(request.cell) == n_dims
        if request.op == "slice":
            assert request.cell.count(None) == 1
        elif request.op == "rollup":
            assert request.cell[request.dim] is not None
        elif request.op == "drilldown":
            assert request.cell[request.dim] is None


def test_driver_pool_bind_dim_pins_the_shard_key():
    engine = QueryEngine.from_table(_zipf_table())
    stats = engine.stats()
    driver = WorkloadDriver(
        lambda: InProcessClient(engine),
        mix=WorkloadMix(point=0.6, rollup=0.15, drilldown=0.1, slice=0.1, dice=0.05),
        pool_size=64,
        seed=9,
        bind_dim=0,
    )
    pool = driver._build_pool(stats, np.random.default_rng(9))
    for request in pool:
        assert request.cell[0] is not None  # every query routes to one shard
        if request.op == "rollup":
            assert request.dim != 0  # the shard key never rolls away
        if request.op == "dice":
            assert request.predicates and "0" not in request.predicates
    # the pinned pool must still be entirely valid
    for request in pool:
        response = engine.execute(request)
        assert "error" not in response


def test_approx_fraction_folds_dice_into_a_diceless_mix():
    # The default mix carries no dice, so --approx-fraction would
    # silently send zero approximate traffic; the driver folds a dice
    # share in instead of no-opping.
    engine = QueryEngine.from_table(_zipf_table())
    driver = WorkloadDriver(
        lambda: InProcessClient(engine), pool_size=64, seed=3,
        approx_fraction=1.0,
    )
    assert driver.mix.normalized()["dice"] > 0
    pool = driver._build_pool(engine.stats(), np.random.default_rng(3))
    assert any(r.approx for r in pool)
    # An explicit dice weight is left alone.
    explicit = WorkloadMix(point=0.5, dice=0.5)
    driver = WorkloadDriver(
        lambda: InProcessClient(engine), mix=explicit, approx_fraction=0.5,
    )
    assert driver.mix == explicit


def test_driver_with_writer_appends_and_bumps_version():
    engine = QueryEngine.from_table(_zipf_table(n_rows=120))
    driver = WorkloadDriver(
        lambda: InProcessClient(engine), pool_size=16, seed=2,
        append_batches=2, append_rows=8,
    )
    report = driver.run(clients=2, requests_per_client=50)
    assert report.appends >= 1  # the writer may be cut short by the readers ending
    assert report.end_version == report.appends
    assert report.end_version > report.start_version == 0
    assert "writes:" in report.format()


def test_driver_validates_arguments():
    engine = QueryEngine.from_table(make_paper_table())
    with pytest.raises(ValueError):
        WorkloadDriver(lambda: InProcessClient(engine), pool_size=0)
    driver = WorkloadDriver(lambda: InProcessClient(engine))
    with pytest.raises(ValueError):
        driver.run(clients=0)
    with pytest.raises(ValueError):
        driver.run(clients=1, requests_per_client=0)


def test_report_format_mentions_the_headlines():
    latency = LatencyHistogram()
    for ms in (1, 2, 3, 40):
        latency.record(ms / 1000)
    report = WorkloadReport(
        clients=2, requests_per_client=2, total_requests=4, wall_seconds=0.5,
        latency=latency, op_counts={"point": 3, "slice": 1}, cached_responses=2,
        errors=1, appends=0, start_version=0, end_version=0, pool_size=8, theta=1.1,
    )
    text = report.format()
    assert "throughput: 8 req/s" in text
    assert "p50" in text and "p95" in text and "p99" in text
    assert "50.0% hit rate" in text
    assert "errors: 1" in text
    assert "writes:" not in text
    assert report.hit_rate == 0.5
