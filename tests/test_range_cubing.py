"""Unit + property tests for range cubing (paper Section 5, Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.range_cubing import range_cubing, range_cubing_detailed
from repro.cube.cell import apex_cell
from repro.cube.full_cube import compute_full_cube
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_paper_example_produces_figure_5_ranges():
    table = make_paper_table()
    cube = range_cubing(table)
    rendered = set(cube.sorted_strings(table.encoder))
    # All five ranges of Figure 5 (those with Store = S1):
    for expected in [
        "(S1, C1', *, *)",
        "(S1, C1', *, D1)",
        "(S1, C1', *, D2)",
        "(S1, C1', P1, D1')",
        "(S1, C1', P2, D2')",
    ]:
        assert expected in rendered
    # and those five are exactly the ranges binding S1:
    assert sum(1 for s in rendered if s.startswith("(S1")) == 5


def test_paper_example_range_counts():
    # "the five ranges in Figure 5 consist of 14 cells"
    table = make_paper_table()
    cube = range_cubing(table)
    s1_ranges = [r for r in cube if r.specific[0] == 0]
    assert len(s1_ranges) == 5
    assert sum(r.n_cells for r in s1_ranges) == 14
    # and the whole cube partitions all 69 cells
    assert cube.n_cells == 69


def test_expansion_matches_oracle_on_paper_table():
    table = make_paper_table()
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    assert cubes_equal(dict(cube.expand()), oracle.as_dict())


def test_apex_is_emitted_exactly_once():
    table = make_paper_table()
    cube = range_cubing(table)
    apex_ranges = [r for r in cube if r.specific == apex_cell(4)]
    assert len(apex_ranges) == 1
    assert apex_ranges[0].state[0] == 6


def test_ranges_are_pairwise_disjoint():
    table = make_paper_table()
    cube = range_cubing(table)
    seen = set()
    for cell, _ in cube.expand():
        assert cell not in seen, f"cell {cell} covered twice"
        seen.add(cell)


def test_single_row_table():
    table = make_encoded_table([(3, 1, 2)])
    cube = range_cubing(table)
    # One range per leading bound dimension (3, *, *), (*, 1, *), (*, *, 2)
    # — each with the later dimensions marked — plus the apex: n + 1 ranges
    # covering all 2**3 cells.
    assert cube.n_ranges == 4
    assert cube.n_cells == 8
    assert cubes_equal(dict(cube.expand()), compute_full_cube(table).as_dict())


def test_empty_table():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    cube = range_cubing(table)
    assert cube.n_ranges == 0
    assert cube.n_cells == 0


def test_one_dimensional_table():
    table = make_encoded_table([(0,), (0,), (1,)])
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    assert cubes_equal(dict(cube.expand()), oracle.as_dict())
    assert cube.n_ranges == 3  # apex + two value ranges


def test_order_parameter_is_transparent():
    table = make_paper_table()
    plain = compute_full_cube(table).as_dict()
    for order in [(3, 2, 1, 0), (1, 3, 0, 2), (0, 1, 2, 3)]:
        cube = range_cubing(table, dim_order=order)
        assert cubes_equal(dict(cube.expand()), plain)


def test_detailed_stats_are_consistent():
    table = make_paper_table()
    cube, stats = range_cubing_detailed(table)
    assert stats["trie_nodes"] == 8
    assert stats["trie_interior"] == 2
    assert stats["trie_leaves"] == 6
    assert stats["total_seconds"] >= 0
    # the default dim_order="auto" adds a (counted) planning phase
    assert (
        stats.get("tune_seconds", 0.0)
        + stats["build_seconds"]
        + stats["traverse_seconds"]
        == pytest.approx(stats["total_seconds"], rel=0.05)
    )
    assert cube.n_ranges == 33


def test_iceberg_matches_filtered_full_cube():
    table = make_paper_table()
    for min_support in (2, 3, 4, 7):
        iceberg = range_cubing(table, min_support=min_support)
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(dict(iceberg.expand()), expected)


def test_iceberg_above_table_size_is_empty():
    table = make_paper_table()
    assert range_cubing(table, min_support=7).n_ranges == 0


def test_duplicates_aggregate():
    table = make_encoded_table([(0, 1), (0, 1)], measures=[(2.0,), (3.0,)])
    cube = range_cubing(table)
    lookup = dict(cube.expand())
    assert lookup[(0, 1)] == (2, 5.0)
    assert lookup[(None, None)] == (2, 5.0)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_range_cube_equals_full_cube(table):
    cube = range_cubing(table)
    oracle = compute_full_cube(table)
    expanded = {}
    for cell, state in cube.expand():
        assert cell not in expanded  # partition: disjoint ranges
        expanded[cell] = state
    assert cubes_equal(expanded, oracle.as_dict())


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_rows=15, max_dims=4))
def test_iceberg_property(table):
    for min_support in (2, 3):
        iceberg = range_cubing(table, min_support=min_support)
        expected = compute_full_cube(table, min_support=min_support).as_dict()
        assert cubes_equal(dict(iceberg.expand()), expected)


@settings(max_examples=30, deadline=None)
@given(table_strategy(max_dims=4))
def test_any_dimension_order_gives_same_cube_contents(table):
    oracle = compute_full_cube(table).as_dict()
    order = tuple(reversed(range(table.n_dims)))
    assert cubes_equal(dict(range_cubing(table, dim_order=order).expand()), oracle)


@settings(max_examples=30, deadline=None)
@given(table_strategy())
def test_cells_within_a_range_share_covering_tuples(table):
    # Lemma 3: every cell of a range aggregates the same tuple set.
    from repro.cube.cell import matches_row

    rows = table.dim_rows()
    cube = range_cubing(table)
    for r in cube.ranges[:50]:
        cover = None
        for cell in r.cells():
            matched = frozenset(
                i for i, row in enumerate(rows) if matches_row(cell, row)
            )
            if cover is None:
                cover = matched
            assert matched == cover
        assert cover is not None and len(cover) == r.state[0]
