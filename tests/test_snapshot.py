"""The snapshot subsystem: mmap round-trip identity, integrity, tiering.

The load-bearing property is *bit identity*: a cube loaded back from a
memory-mapped snapshot must answer every read — point, children, dice,
batch — exactly like the resident :class:`ColumnarRangeStore` and the
hash index it was frozen from.  The measure columns are saved from the
same float64 arrays the resident store reduces over, so even float
aggregates compare with ``==``, not a tolerance.

The second property is *honesty about resources*: with a resident-bytes
budget far below the mapped columns, the tier policy must keep its
promise (``resident_bytes <= budget``) while every answer stays correct
— the out-of-core path, exercised end to end over HTTP.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.range_cubing import range_cubing
from repro.core.range_index import RangeCubeIndex
from repro.cube.full_cube import compute_full_cube
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.serve import (
    CubeServer,
    CubeStore,
    HTTPCubeClient,
    InProcessClient,
    QueryEngine,
    QueryRequest,
    ServeError,
    ShardRouter,
)
from repro.serve.protocol import ErrorCode
from repro.serve.workload import WorkloadDriver
from repro.store import (
    SnapshotCube,
    SnapshotEngine,
    SnapshotError,
    SnapshotIntegrityError,
    TierPolicy,
    inspect_snapshot,
    is_sharded_snapshot,
    load_snapshot,
    read_manifest,
    save_sharded_snapshot,
    write_snapshot,
)
from repro.table.aggregates import (
    AggregateFunction,
    Aggregator,
    AvgAggregator,
    CountAggregator,
    MaxFunction,
    MinFunction,
    MultiAggregator,
    SumCountAggregator,
    SumFunction,
)
from tests.conftest import make_paper_table, table_strategy

AGGREGATORS = {
    "count": CountAggregator,
    "sumcount": lambda: SumCountAggregator(0),
    "avg": lambda: AvgAggregator(0),
    "multi": lambda: MultiAggregator(
        [(SumFunction(), 0), (MinFunction(), 0), (MaxFunction(), 0)]
    ),
}


def _snapshot_of(cube, schema, tmp, **kw) -> Path:
    path = Path(tmp) / "cube.snapshot"
    write_snapshot(cube, path, schema, **kw)
    return path


def _probe_cells(table, oracle) -> list[tuple]:
    """Every non-empty cell of the full lattice plus misses and the apex."""
    cells = list(oracle.iter_cells())
    ghost = tuple(int(table.dim_codes[:, d].max()) + 1 for d in range(table.n_dims))
    cells.append(ghost)
    cells.append(tuple([None] * table.n_dims))
    return cells


# ----------------------------------------------------------------------
# round-trip identity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("agg_name", sorted(AGGREGATORS))
@settings(max_examples=15, deadline=None)
@given(table_strategy(max_rows=16, max_dims=4))
def test_round_trip_answers_bit_identical(agg_name, table):
    """Point/batch answers from the reloaded mmap == resident + hash index."""
    agg = AGGREGATORS[agg_name]()
    cube = range_cubing(table, aggregator=agg)
    hash_index = RangeCubeIndex(cube, strategy="hash")
    cells = _probe_cells(table, compute_full_cube(table))
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(cube, table.schema, tmp, rows_absorbed=table.n_rows)
        reloaded = SnapshotCube(load_snapshot(path))
        assert len(reloaded) == cube.n_ranges
        batch = reloaded.lookup_batch(cells)
        for cell, via_batch in zip(cells, batch):
            expect = cube.lookup(cell)
            assert reloaded.lookup(cell) == expect
            assert via_batch == expect
            found = hash_index.find(cell)
            assert (found.state if found is not None else None) == expect


@settings(max_examples=10, deadline=None)
@given(table_strategy(max_rows=16, max_dims=4, n_measures=2))
def test_round_trip_children_and_dice_identical(table):
    """The serve read surface (all five ops) over mmap == resident engine."""
    engine = QueryEngine.from_table(table, cache_capacity=0)
    snap = engine.snapshot()
    n_dims = table.n_dims
    card0 = int(table.dim_codes[:, 0].max()) + 1
    requests = [
        QueryRequest(op="point", cell=[None] * n_dims),
        QueryRequest(op="point", cell=[0] + [None] * (n_dims - 1)),
        QueryRequest(op="rollup", cell=[0] + [None] * (n_dims - 1), dim=0),
        QueryRequest(op="drilldown", cell=[None] * n_dims, dim=0),
        QueryRequest(op="slice", cell=[0] + [None] * (n_dims - 1)),
        QueryRequest(
            op="dice",
            cell=[None] * n_dims,
            predicates={"0": sorted({0, card0 - 1})},
        ),
    ]
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(snap.cube, snap.schema, tmp, rows_absorbed=table.n_rows)
        mapped = SnapshotEngine(path, cache_capacity=0)
        for request in requests:
            assert mapped.execute(request) == engine.execute(request)
        assert mapped.execute_batch(requests) == engine.execute_batch(requests)


def test_paper_example_round_trip():
    """The paper's sales table survives freeze/thaw with exact aggregates."""
    table = make_paper_table()
    cube = range_cubing(table)
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(cube, table.schema, tmp)
        store = load_snapshot(path)
        q = SnapshotCube(store)
        assert q.lookup((None, None, None, None)) == cube.lookup((None, None, None, None))
        info = inspect_snapshot(path)
        assert info["n_ranges"] == cube.n_ranges
        assert info["states_format"] == "columns"
        assert info["column_bytes"] > 0


def test_custom_aggregator_falls_back_to_json_states():
    """Non-stock algebra: states travel as JSON, caller must supply the agg."""

    class ProductFunction(AggregateFunction):
        name = "product"

        def initial(self, value):
            return value

        def merge(self, a, b):
            return a * b

        def finalize(self, state):
            return state

    agg = Aggregator(((ProductFunction(), 0),))
    table = make_paper_table()
    cube = range_cubing(table, aggregator=agg)
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(cube, table.schema, tmp)
        assert inspect_snapshot(path)["states_format"] == "json"
        with pytest.raises(SnapshotError, match="custom aggregator"):
            load_snapshot(path)
        reloaded = SnapshotCube(load_snapshot(path, aggregator=agg))
        for cell in [(None,) * 4, (0, None, None, None), (0, 0, 0, 0)]:
            assert reloaded.lookup(cell) == cube.lookup(cell)


# ----------------------------------------------------------------------
# integrity and versioning
# ----------------------------------------------------------------------


def _small_snapshot(tmp) -> Path:
    table = make_paper_table()
    return _snapshot_of(range_cubing(table), table.schema, tmp)


def test_corrupted_column_rejected_by_verify(tmp_path):
    path = _small_snapshot(tmp_path)
    victim = path / "counts.npy"
    blob = bytearray(victim.read_bytes())
    blob[-1] ^= 0xFF
    victim.write_bytes(bytes(blob))
    with pytest.raises(SnapshotIntegrityError, match="checksum mismatch"):
        load_snapshot(path, verify=True)


def test_shape_mismatch_rejected_even_without_verify(tmp_path):
    path = _small_snapshot(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["arrays"]["counts"]["shape"][0] += 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotIntegrityError, match="manifest says"):
        load_snapshot(path)


def test_newer_format_version_refused(tmp_path):
    path = _small_snapshot(tmp_path)
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["version"] += 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="newer"):
        read_manifest(path)


def test_missing_or_foreign_directory_refused(tmp_path):
    with pytest.raises(SnapshotError):
        read_manifest(tmp_path / "nope")
    (tmp_path / "foreign").mkdir()
    (tmp_path / "foreign" / "manifest.json").write_text('{"format": "other"}')
    with pytest.raises(SnapshotError):
        read_manifest(tmp_path / "foreign")


def test_overwrite_is_atomic_and_leaves_no_temp_dirs(tmp_path):
    table = make_paper_table()
    cube = range_cubing(table)
    path = _snapshot_of(cube, table.schema, tmp_path)
    first = read_manifest(path)
    write_snapshot(cube, path, table.schema, engine_version=7)
    assert read_manifest(path)["engine_version"] == 7
    assert first["engine_version"] == 0
    leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
    assert leftovers == []


# ----------------------------------------------------------------------
# the two-tier engine
# ----------------------------------------------------------------------


def _int_table(n_rows=2500, n_dims=5, card=9, seed=5):
    table = correlated_table(
        n_rows, n_dims, card, [FunctionalDependency((0,), (1,))], theta=1.2, seed=seed
    )
    table.measures[:] = np.round(table.measures)
    return table


def test_engine_is_read_only():
    table = make_paper_table()
    cube = range_cubing(table)
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(cube, table.schema, tmp)
        with SnapshotEngine(path) as engine:
            with pytest.raises(ServeError) as err:
                engine.append([[0, 0, 0, 0]], [[1.0]])
            assert err.value.info.code == ErrorCode.BAD_REQUEST


def test_out_of_core_budget_is_respected_over_http():
    """A serve process answers off a snapshot larger than its budget."""
    table = _int_table()
    reference = QueryEngine.from_table(table, cache_capacity=0)
    snap = reference.snapshot()
    budget = 32 * 1024
    rng = np.random.default_rng(17)
    requests = []
    for _ in range(80):
        bound = rng.choice(table.n_dims, size=int(rng.integers(1, 4)), replace=False)
        cell = [None] * table.n_dims
        for d in bound:
            cell[int(d)] = int(rng.integers(0, 9))
        requests.append({"op": "point", "cell": cell})
    with tempfile.TemporaryDirectory() as tmp:
        path = _snapshot_of(snap.cube, snap.schema, tmp, rows_absorbed=table.n_rows)
        engine = SnapshotEngine(
            path, cache_capacity=0, budget_bytes=budget, promote_after=1
        )
        assert engine.store.nbytes() > budget  # genuinely out of core
        with CubeServer(engine, port=0) as server:
            client = HTTPCubeClient(server.url)
            try:
                responses = client.query_batch(requests)
                for request, response in zip(requests, responses):
                    assert response["value"] == reference.point(request["cell"])
                stats = client.stats()
            finally:
                client.close()
        tier = stats["snapshot"]["tier"]
        assert tier["resident_bytes"] <= budget
        assert tier["hot_hits"] > 0  # promote_after=1: every group maps

        # Pinned cold (promotion threshold unreachable): every answer comes
        # straight off the mapped columns, nothing is ever made resident.
        cold = SnapshotEngine(
            path, cache_capacity=0, budget_bytes=budget, promote_after=1 << 30
        )
        with CubeServer(cold, port=0) as server:
            client = HTTPCubeClient(server.url)
            try:
                responses = client.query_batch(requests)
                for request, response in zip(requests, responses):
                    assert response["value"] == reference.point(request["cell"])
                stats = client.stats()
            finally:
                client.close()
        tier = stats["snapshot"]["tier"]
        assert tier["resident_bytes"] == 0
        assert tier["cold_hits"] > 0
        assert tier["hot_hits"] == 0


def test_tier_policy_promotes_and_evicts_within_budget():
    table = _int_table(n_rows=1500)
    cube = range_cubing(table)
    store = cube.to_columnar()
    # At 1500 rows a two-dimension cuboid map memo runs ~15 KiB, so a
    # 20 KiB budget holds one such map (plus id memos) but never two:
    # the second promotion must evict the first.
    budget = 20 * 1024
    policy = TierPolicy(budget_bytes=budget, promote_after=1)
    policy.attach(store)
    rng = np.random.default_rng(3)
    for mask_round in range(12):
        bound = rng.choice(table.n_dims, size=2, replace=False)
        cells = []
        for _ in range(8):
            cell = [None] * table.n_dims
            for d in bound:
                cell[int(d)] = int(rng.integers(0, 9))
            cells.append(tuple(cell))
        store.find_batch_ids(cells)
        assert policy.stats()["resident_bytes"] <= budget
    stats = policy.stats()
    assert stats["promotions"] > 0
    assert stats["evictions"] > 0  # the budget forced turnover


def test_unpolicied_store_behavior_unchanged():
    """Without a policy every memo is admitted — the pre-snapshot default."""
    table = make_paper_table()
    store = range_cubing(table).to_columnar()
    cells = [(0, None, None, None), (1, None, None, None)]
    store.find_batch_ids(cells)
    assert store._memo_policy is None


# ----------------------------------------------------------------------
# CubeStore integration
# ----------------------------------------------------------------------


def test_cube_store_snapshot_format_round_trip(tmp_path):
    table = _int_table(n_rows=600, n_dims=4)
    store = CubeStore(tmp_path / "cubes", format="snapshot")
    store.create("sales", table)
    meta = json.loads((tmp_path / "cubes" / "sales.meta.json").read_text())
    assert meta["read_format"] == "snapshot"
    engine = store.open_engine("sales")
    plain = CubeStore(tmp_path / "cubes").load("sales")
    reference = QueryEngine(plain.cuber, plain.schema)
    assert isinstance(engine.snapshot().cube, SnapshotCube)
    for cell in ([None] * 4, [0, None, None, None], [8, 8, 8, 8]):
        assert engine.point(cell) == reference.point(cell)
    # Appends keep flowing through the trie: the snapshot generation is
    # replaced by a fresh resident cube and the answer reflects the row.
    engine.append([[3, 3, 3, 3]], [[5.0]])
    assert not isinstance(engine.snapshot().cube, SnapshotCube)
    assert engine.point([3, 3, 3, 3]) is not None
    assert engine.version == reference.version + 1


def test_cube_store_legacy_json_entries_still_load(tmp_path):
    table = make_paper_table()
    CubeStore(tmp_path / "cubes").create("legacy", table)
    # Opening through a snapshot-format store must not require a snapshot.
    engine = CubeStore(tmp_path / "cubes", format="snapshot").open_engine("legacy")
    assert not isinstance(engine.snapshot().cube, SnapshotCube)
    assert engine.point([None] * table.n_dims)["count"] == table.n_rows


def test_cube_store_delete_removes_snapshot_dir(tmp_path):
    table = make_paper_table()
    store = CubeStore(tmp_path / "cubes", format="snapshot")
    store.create("doomed", table)
    assert (tmp_path / "cubes" / "doomed.snapshot").is_dir()
    store.delete("doomed")
    assert list((tmp_path / "cubes").iterdir()) == []


def test_cube_store_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError, match="unknown store format"):
        CubeStore(tmp_path, format="parquet")


# ----------------------------------------------------------------------
# the sharded fleet
# ----------------------------------------------------------------------


def test_sharded_snapshot_identity_and_read_only(tmp_path):
    table = _int_table(n_rows=900, n_dims=4, seed=9)
    path = save_sharded_snapshot(table, tmp_path / "fleet", n_shards=2)
    assert is_sharded_snapshot(path)
    rng = np.random.default_rng(23)
    requests = []
    for _ in range(24):
        bound = rng.choice(4, size=int(rng.integers(0, 3)), replace=False)
        cell = [None] * 4
        for d in bound:
            cell[int(d)] = int(rng.integers(0, 9))
        requests.append(QueryRequest(op="point", cell=cell))
    requests.append(QueryRequest(op="drilldown", cell=[None] * 4, dim=0))
    live = ShardRouter.from_table(table, n_shards=2)
    try:
        expected = [live.execute(r) for r in requests]
    finally:
        live.close()
    mapped = ShardRouter.from_snapshot_dir(path)
    try:
        for request, expect in zip(requests, expected):
            assert mapped.execute(request) == expect
        with pytest.raises(ServeError) as err:
            mapped.append([[0, 0, 0, 0]], [[1.0]])
        assert err.value.info.code == ErrorCode.BAD_REQUEST
        assert "snapshot" in str(err.value)
    finally:
        mapped.close()


# ----------------------------------------------------------------------
# workload cold-start mode and the CLI
# ----------------------------------------------------------------------


def test_workload_cold_start_reported(tmp_path):
    table = _int_table(n_rows=400, n_dims=4)
    engine = QueryEngine.from_table(table, cache_capacity=0)
    snap = engine.snapshot()
    path = _snapshot_of(snap.cube, snap.schema, tmp_path, rows_absorbed=table.n_rows)
    serving = SnapshotEngine(path)
    driver = WorkloadDriver(
        lambda: InProcessClient(serving),
        pool_size=16,
        cold_start=3,
        cold_start_factory=lambda: SnapshotEngine(path),
    )
    report = driver.run(clients=1, requests_per_client=8)
    assert report.op_latency["cold_start"].count == 3
    assert "cold_start" in report.format()
    assert report.total_requests == 8  # restarts are not requests


def test_workload_cold_start_requires_factory():
    with pytest.raises(ValueError, match="cold_start_factory"):
        WorkloadDriver(lambda: None, cold_start=2)


def test_cli_snapshot_save_inspect_load(tmp_path, capsys):
    from repro.cli import main
    from repro.data.io import write_table_csv

    csv = tmp_path / "t.csv"
    write_table_csv(_int_table(n_rows=300, n_dims=4), csv)
    out = tmp_path / "t.snapshot"
    assert main(["snapshot", "save", str(csv), "--measures", "1", "--out", str(out)]) == 0
    assert main(["snapshot", "inspect", str(out)]) == 0
    assert main(["snapshot", "load", str(out), "--verify"]) == 0
    output = capsys.readouterr().out
    assert "checksums: ok" in output
    assert "first query" in output


def test_cli_serve_requires_exactly_one_source(capsys):
    from repro.cli import main

    assert main(["serve"]) == 2
    assert "snapshot-dir" in capsys.readouterr().err
