"""Moderate-scale consistency checks (seconds, not milliseconds).

These run the real generators at a few thousand rows — large enough for
deep tries, multi-level reductions and heavy merging — and verify the
cheap global invariants that must survive scale: cell-count agreement
between independent implementations, partition disjointness by counting,
and spot-checked aggregates against direct base-table scans.
"""

import numpy as np
import pytest

from repro.baselines.buc import buc
from repro.core.range_cubing import range_cubing
from repro.cube.cell import matches_row
from repro.cube.full_cube import full_cube_size
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import zipf_table
from repro.data.weather import weather_table


@pytest.fixture(scope="module")
def big_zipf():
    return zipf_table(4000, 6, 80, theta=1.4, seed=99)


def test_range_cube_cell_count_matches_numpy_count(big_zipf):
    cube = range_cubing(big_zipf)
    assert cube.n_cells == full_cube_size(big_zipf)


def test_range_and_buc_agree_on_cell_count(big_zipf):
    cube = range_cubing(big_zipf)
    assert cube.n_cells == len(buc(big_zipf))


def test_partition_is_disjoint_by_counting(big_zipf):
    # duplicate-free expansion at scale, checked by count not by set
    cube = range_cubing(big_zipf)
    seen = set()
    total = 0
    for r in cube.ranges:
        for cell in r.cells():
            total += 1
            seen.add(cell)
    assert total == len(seen) == cube.n_cells


def test_spot_aggregates_against_base_scans(big_zipf):
    cube = range_cubing(big_zipf)
    rows = big_zipf.dim_rows()
    rng = np.random.default_rng(5)
    candidates = [r.specific for r in cube.ranges]
    for index in rng.choice(len(candidates), size=25, replace=False):
        cell = candidates[int(index)]
        expected_count = sum(1 for row in rows if matches_row(cell, row))
        assert cube.lookup(cell)[0] == expected_count


def test_weather_at_scale_compresses_hard():
    table = weather_table(6000, seed=31)
    cube = range_cubing(table, dim_order=tuple(range(table.n_dims)))
    assert cube.tuple_ratio() < 0.25
    assert cube.n_cells == full_cube_size(table)


def test_injected_correlation_shows_in_marked_dims():
    table = correlated_table(
        3000, 5, 60, [FunctionalDependency((0,), (1,))], theta=1.0, seed=13
    )
    cube = range_cubing(table, dim_order=tuple(range(5)))
    # dimension 1 is implied by dimension 0, so ranges binding dim 0
    # should overwhelmingly carry dim 1 as a *marked* coordinate.
    binding_zero = [r for r in cube.ranges if r.specific[0] is not None]
    marked_one = [r for r in binding_zero if r.mask >> 1 & 1]
    assert len(marked_one) > 0.9 * len(binding_zero)
