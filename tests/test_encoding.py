"""Unit tests for repro.table.encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.table.encoding import DimensionEncoder, TableEncoder
from repro.table.schema import Schema


def test_encode_assigns_dense_codes_in_first_seen_order():
    enc = DimensionEncoder()
    assert enc.encode("x") == 0
    assert enc.encode("y") == 1
    assert enc.encode("x") == 0
    assert enc.cardinality == 2
    assert enc.values() == ("x", "y")


def test_decode_inverts_encode():
    enc = DimensionEncoder()
    for value in ["a", "b", 3, (1, 2)]:
        assert enc.decode(enc.encode(value)) == value


def test_encode_existing_raises_on_unseen():
    enc = DimensionEncoder()
    enc.encode("a")
    assert enc.encode_existing("a") == 0
    with pytest.raises(KeyError):
        enc.encode_existing("b")


def test_table_encoder_row_roundtrip():
    schema = Schema.from_names(["a", "b"])
    enc = TableEncoder(schema)
    codes = enc.encode_row(("x", "y"))
    assert enc.decode_row(codes) == ("x", "y")


def test_table_encoder_rejects_wrong_arity():
    enc = TableEncoder(Schema.from_names(["a", "b"]))
    with pytest.raises(ValueError):
        enc.encode_row(("x",))


def test_decode_cell_keeps_stars():
    schema = Schema.from_names(["a", "b"])
    enc = TableEncoder(schema)
    enc.encode_row(("x", "y"))
    assert enc.decode_cell((0, None)) == ("x", None)


def test_encoded_schema_reports_cardinalities():
    schema = Schema.from_names(["a", "b"])
    enc = TableEncoder(schema)
    enc.encode_rows([("x", "u"), ("y", "u"), ("z", "u")])
    encoded = enc.encoded_schema()
    assert encoded.cardinalities == (3, 1)


@given(st.lists(st.text(max_size=5), min_size=1, max_size=50))
def test_codes_are_dense_and_stable(values):
    enc = DimensionEncoder()
    codes = [enc.encode(v) for v in values]
    assert max(codes) == len(set(values)) - 1
    assert [enc.encode(v) for v in values] == codes
    assert all(enc.decode(c) == v for v, c in zip(values, codes))
