"""Tests for the one-shot report generator and multiway harness path."""

from repro.harness.report_all import generate_report, main
from repro.harness.runner import measure

from tests.conftest import make_encoded_table


def test_generate_report_contains_all_sections():
    report = generate_report(preset="tiny", algorithms=("range",))
    for heading in (
        "# Range CUBE reproduction report",
        "## Figure 8",
        "## Figure 9",
        "## Figure 10",
        "## Figure 11",
        "## Section 6.2",
        "## Ablations",
    ):
        assert heading in report
    assert "Expected shape (paper)" in report
    assert "range cubing (s)" in report


def test_main_writes_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["--preset", "tiny", "--algorithms", "range", "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert out.read_text().startswith("# Range CUBE reproduction report")


def test_main_prints_to_stdout(capsys):
    assert main(["--preset", "tiny", "--algorithms", "range"]) == 0
    assert "## Ablations" in capsys.readouterr().out


def test_measure_supports_multiway():
    table = make_encoded_table([(i % 3, i % 4) for i in range(40)])
    row = measure(table, algorithms=("range", "multiway"))
    assert row["multiway_cells"] == row["full_cells"]
    assert row["multiway_seconds"] >= 0


def test_measure_multiway_space_guard_is_soft():
    import math

    table = make_encoded_table([(0, 0), (10**6, 10**6)])
    row = measure(table, algorithms=("multiway",))
    assert math.isnan(row["multiway_seconds"])
    assert "multiway_cells" not in row
