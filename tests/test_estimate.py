"""Unit tests for cube-size estimation and the strategy advisor."""

import numpy as np
import pytest

from repro.cube.estimate import (
    estimate_cuboid_size,
    estimate_full_cube_size,
    gee_distinct_estimate,
    recommend_strategy,
)
from repro.cube.full_cube import full_cube_size
from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import uniform_table, zipf_table
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import make_paper_table


def test_gee_on_all_distinct_sample():
    # every sampled group unique: estimate scales f1 by sqrt(N/n)
    sample = np.arange(100)
    estimate = gee_distinct_estimate(sample, n_total=10_000)
    assert estimate == pytest.approx(np.sqrt(100) * 100)


def test_gee_on_single_group():
    sample = np.zeros(50, dtype=np.int64)
    assert gee_distinct_estimate(sample, n_total=5000) == 1.0


def test_gee_clamped_to_population():
    sample = np.arange(90)
    assert gee_distinct_estimate(sample, n_total=100) <= 100


def test_gee_empty_sample():
    assert gee_distinct_estimate(np.array([], dtype=np.int64), 100) == 0.0


def test_gee_sample_equals_population_is_exact():
    # n == N: the scale factor is 1, so the estimate collapses to
    # f1 + f_{>=2} — exactly the distinct count of the full data.
    groups = np.array([3, 3, 7, 9, 9, 9, 12], dtype=np.int64)
    estimate = gee_distinct_estimate(groups, n_total=len(groups))
    assert estimate == float(len(np.unique(groups)))


def test_gee_empty_population():
    # A 0-row table: no sample can be drawn and nothing exists to count.
    assert gee_distinct_estimate(np.array([], dtype=np.int64), 0) == 0.0


def test_cuboid_estimate_is_exact_when_sample_covers_the_table():
    table = make_paper_table()  # 6 rows << any sane sample size
    for dims in ([0], [0, 1], [0, 1, 2, 3]):
        exact = float(np.unique(table.dim_codes[:, dims], axis=0).shape[0])
        assert estimate_cuboid_size(table, dims, sample_size=2000) == exact


def test_small_tables_are_counted_exactly():
    table = make_paper_table()
    assert estimate_full_cube_size(table) == full_cube_size(table)
    assert estimate_cuboid_size(table, [0, 1]) == 5.0  # distinct (store, city)
    assert estimate_cuboid_size(table, []) == 1.0


def test_estimate_tracks_truth_within_factor():
    table = zipf_table(20_000, 4, 60, theta=1.2, seed=5)
    truth = full_cube_size(table)
    estimate = estimate_full_cube_size(table, sample_size=2000, seed=1)
    assert truth / 3 <= estimate <= truth * 3


def test_estimate_orders_datasets_correctly():
    sparse = uniform_table(8000, 4, 200, seed=2)
    dense = uniform_table(8000, 4, 5, seed=2)
    assert estimate_full_cube_size(sparse, seed=3) > estimate_full_cube_size(
        dense, seed=3
    )


def test_empty_table_estimates_zero():
    schema = Schema.from_names(["a", "b"])
    table = BaseTable(schema, np.zeros((0, 2), dtype=np.int64))
    assert estimate_full_cube_size(table) == 0.0
    assert estimate_cuboid_size(table, []) == 0.0


def test_recommend_dense_table_gets_multiway():
    dense = uniform_table(5000, 3, 4, seed=1)
    advice = recommend_strategy(dense)
    assert advice.strategy == "multiway"
    assert advice.density > 0.01


def test_recommend_sparse_table_gets_range():
    sparse = correlated_table(
        3000, 5, 500, [FunctionalDependency((0,), (1,))], seed=1
    )
    advice = recommend_strategy(sparse)
    assert advice.strategy == "range"
    assert advice.estimated_cells > 0


def test_recommend_high_dims_gets_shell():
    rows = np.zeros((10, 20), dtype=np.int64)
    table = BaseTable(Schema.from_names([f"d{i}" for i in range(20)]), rows)
    advice = recommend_strategy(table)
    assert advice.strategy == "shell-fragments"
