"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.synthetic import uniform_table, zipf_probabilities, zipf_table


def test_uniform_table_shape_and_domains():
    table = uniform_table(100, 3, 5, seed=1)
    assert table.n_rows == 100
    assert table.n_dims == 3
    assert table.n_measures == 1
    assert table.dim_codes.max() < 5
    assert table.dim_codes.min() >= 0
    assert table.cardinalities == (5, 5, 5)


def test_per_dimension_cardinalities():
    table = uniform_table(50, 3, [2, 4, 8], seed=1)
    assert table.cardinalities == (2, 4, 8)
    for d, card in enumerate((2, 4, 8)):
        assert table.dim_codes[:, d].max() < card


def test_cardinality_list_length_checked():
    with pytest.raises(ValueError):
        uniform_table(10, 3, [2, 4], seed=1)


def test_zipf_probabilities_normalized_and_monotone():
    probs = zipf_probabilities(10, 1.5)
    assert probs.sum() == pytest.approx(1.0)
    assert all(probs[i] >= probs[i + 1] for i in range(9))


def test_zipf_theta_zero_is_uniform():
    probs = zipf_probabilities(8, 0.0)
    assert np.allclose(probs, 1 / 8)


def test_zipf_probabilities_reject_empty_domain():
    with pytest.raises(ValueError):
        zipf_probabilities(0, 1.0)


def test_zipf_table_skews_toward_low_codes():
    table = zipf_table(5000, 1, 100, theta=2.0, seed=3)
    values, counts = np.unique(table.dim_column(0), return_counts=True)
    frequency = dict(zip(values.tolist(), counts.tolist()))
    assert frequency[0] > frequency.get(10, 0)
    assert frequency[0] > 5000 / 100  # far above the uniform share


def test_zipf_more_skew_means_fewer_distinct_values():
    mild = zipf_table(2000, 1, 1000, theta=0.5, seed=5)
    harsh = zipf_table(2000, 1, 1000, theta=2.5, seed=5)
    assert harsh.distinct_count(0) < mild.distinct_count(0)


def test_seed_reproducibility():
    a = zipf_table(100, 3, 10, theta=1.5, seed=42)
    b = zipf_table(100, 3, 10, theta=1.5, seed=42)
    assert np.array_equal(a.dim_codes, b.dim_codes)
    assert np.array_equal(a.measures, b.measures)
    c = zipf_table(100, 3, 10, theta=1.5, seed=43)
    assert not np.array_equal(a.dim_codes, c.dim_codes)


def test_measures_are_positive_floats():
    table = uniform_table(20, 2, 3, n_measures=2, seed=1)
    assert table.measures.shape == (20, 2)
    assert (table.measures > 0).all()
