"""Unit + property tests for the BST-condensed cube baseline."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.condensed import CondensedEntry, condensed_cube
from repro.cube.full_cube import compute_full_cube, full_cube_size
from repro.table.base_table import BaseTable
from repro.table.schema import Schema

from tests.conftest import (
    cubes_equal,
    make_encoded_table,
    make_paper_table,
    table_strategy,
)


def test_entry_expansion():
    entry = CondensedEntry(cell=(0, None, None), free_from=1, row=(0, 5, 7), state=(1,))
    assert entry.n_cells == 4
    assert set(entry.cells()) == {
        (0, None, None),
        (0, 5, None),
        (0, None, 7),
        (0, 5, 7),
    }


def test_expansion_matches_oracle_on_paper_table():
    table = make_paper_table()
    cube = condensed_cube(table)
    assert cubes_equal(
        dict(cube.expand()), compute_full_cube(table).as_dict()
    )


def test_expansion_is_disjoint():
    table = make_paper_table()
    cube = condensed_cube(table)
    seen = set()
    for cell, _ in cube.expand():
        assert cell not in seen
        seen.add(cell)
    assert cube.n_cells == len(seen) == full_cube_size(table)


def test_condensation_shrinks_sparse_cube():
    # all-distinct tuples: everything below depth 1 condenses
    table = make_encoded_table([(0, 0, 0), (1, 1, 1), (2, 2, 2)])
    cube = condensed_cube(table)
    assert cube.n_tuples < full_cube_size(table)
    assert cube.entries  # BSTs were found


def test_single_row_is_one_entry():
    table = make_encoded_table([(4, 2)])
    cube = condensed_cube(table)
    assert len(cube.entries) == 1
    assert not cube.cells
    assert cube.n_cells == 4


def test_empty_table():
    schema = Schema.from_names(["a"])
    table = BaseTable(schema, np.zeros((0, 1), dtype=np.int64))
    cube = condensed_cube(table)
    assert cube.n_tuples == 0
    assert cube.n_cells == 0


def test_dense_duplicate_table_has_no_entries():
    table = make_encoded_table([(0, 0), (0, 0)])
    cube = condensed_cube(table)
    assert not cube.entries
    assert cube.n_tuples == 4  # apex, (0,*), (*,0), (0,0)


@settings(max_examples=50, deadline=None)
@given(table_strategy())
def test_matches_oracle_on_random_tables(table):
    cube = condensed_cube(table)
    expanded = {}
    for cell, state in cube.expand():
        assert cell not in expanded
        expanded[cell] = state
    assert cubes_equal(expanded, compute_full_cube(table).as_dict())


@settings(max_examples=40, deadline=None)
@given(table_strategy())
def test_never_larger_than_full_cube(table):
    cube = condensed_cube(table)
    assert cube.n_tuples <= cube.n_cells
