"""The sharded serving tier: cross-shard identity, versioned refresh, failures.

The load-bearing property is *identity*: a :class:`ShardRouter` fanned
over value-partitioned worker processes must answer every request
bit-for-bit identically to one :class:`QueryEngine` over the whole
table.  The fixtures use integer-valued measures so the distributive
merges are exact (float addition is exact on integers far below 2**53),
making ``==`` a sound oracle.
"""

import time

import numpy as np
import pytest

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.serve import (
    CubeServer,
    HTTPCubeClient,
    QueryEngine,
    QueryRequest,
    ServeError,
    ShardRouter,
)
from repro.serve.protocol import ErrorCode

N_DIMS = 6
CARD = 8
FDS = [FunctionalDependency((0,), (1,)), FunctionalDependency((2,), (3,))]


def _correlated(seed=11, n_rows=3000):
    table = correlated_table(n_rows, N_DIMS, CARD, FDS, theta=1.2, seed=seed)
    # Integer measures: shard-merged states finalize bit-identically.
    table.measures[:] = np.round(table.measures)
    return table


@pytest.fixture(scope="module")
def tier():
    """(single engine, 3-shard router) over one correlated table."""
    table = _correlated()
    single = QueryEngine.from_table(table)
    router = ShardRouter.from_table(table, n_shards=3)
    yield single, router
    router.close()


def _strip(response):
    response = dict(response)
    response.pop("cached", None)
    return response


def _random_cell(rng, bind_range):
    n_bound = int(rng.integers(*bind_range))
    bound = rng.choice(N_DIMS, size=n_bound, replace=False)
    cell = [None] * N_DIMS
    for d in bound:
        cell[int(d)] = int(rng.integers(0, CARD))
    return cell


# ---------------------------------------------------------------------------
# cross-shard identity
# ---------------------------------------------------------------------------


def test_point_identity_over_random_cells(tier):
    single, router = tier
    rng = np.random.default_rng(17)
    for _ in range(60):
        request = QueryRequest(op="point", cell=_random_cell(rng, (0, 4)))
        assert _strip(router.execute(request)) == _strip(single.execute(request))


def test_rollup_and_drilldown_identity(tier):
    single, router = tier
    rng = np.random.default_rng(23)
    for _ in range(25):
        cell = _random_cell(rng, (1, 4))
        bound = [d for d in range(N_DIMS) if cell[d] is not None]
        free = [d for d in range(N_DIMS) if cell[d] is None]
        up = QueryRequest(op="rollup", cell=cell, dim=int(rng.choice(bound)))
        down = QueryRequest(op="drilldown", cell=cell, dim=int(rng.choice(free)))
        assert _strip(router.execute(up)) == _strip(single.execute(up))
        assert _strip(router.execute(down)) == _strip(single.execute(down))


def test_drilldown_on_the_shard_dim_unions_all_shards(tier):
    single, router = tier
    request = QueryRequest(op="drilldown", cell=[None] * N_DIMS, dim=0)
    mine = router.execute(request)
    assert _strip(mine) == _strip(single.execute(request))
    # the apex drill-down along the shard dim must cover every residue class
    values = {child["cell"][0] for child in mine["children"]}
    assert {v % router.n_shards for v in values} == set(range(router.n_shards))


def test_slice_identity(tier):
    single, router = tier
    rng = np.random.default_rng(31)
    for _ in range(10):
        cell = _random_cell(rng, (N_DIMS - 2, N_DIMS - 1))
        request = QueryRequest(op="slice", cell=cell)
        assert _strip(router.execute(request)) == _strip(single.execute(request))


def test_dice_identity_including_shard_dim_predicates(tier):
    single, router = tier
    rng = np.random.default_rng(37)
    for _ in range(15):
        cell = _random_cell(rng, (0, 3))
        free = [d for d in range(N_DIMS) if cell[d] is None]
        pred_dims = rng.choice(free, size=min(len(free), 2), replace=False)
        predicates = {
            str(int(d)): sorted(
                int(v) for v in rng.choice(CARD, size=3, replace=False)
            )
            for d in pred_dims
        }
        request = QueryRequest(op="dice", cell=cell, predicates=predicates)
        assert _strip(router.execute(request)) == _strip(single.execute(request))


def test_batch_identity_with_error_items(tier):
    single, router = tier
    rng = np.random.default_rng(41)
    requests = [QueryRequest(op="point", cell=_random_cell(rng, (0, 4)))
                for _ in range(30)]
    requests.insert(5, QueryRequest(op="cube"))            # unknown op
    requests.insert(11, QueryRequest(op="point", cell=[1]))  # wrong arity
    mine = [_strip(r) for r in router.execute_batch(requests)]
    theirs = [_strip(r) for r in single.execute_batch(requests)]
    assert mine == theirs
    assert mine[5]["error"]["code"] == ErrorCode.BAD_REQUEST


def test_invalid_requests_fail_with_the_engines_exact_errors(tier):
    single, router = tier
    for request in (
        QueryRequest(op="nope"),
        QueryRequest(op="point", cell=[0, 0]),
        QueryRequest(op="point", cell=[-1] + [None] * (N_DIMS - 1)),
        QueryRequest(op="rollup", cell=[None] * N_DIMS, dim=0),
        QueryRequest(op="drilldown", cell=[0] * N_DIMS, dim=0),
        QueryRequest(op="dice", predicates={}),
        QueryRequest(op="point", bindings={"nope": 1}),
    ):
        with pytest.raises(ServeError) as single_exc:
            single.execute(request)
        with pytest.raises(ServeError) as router_exc:
            router.execute(request)
        assert str(router_exc.value) == str(single_exc.value)
        assert router_exc.value.info.code == single_exc.value.info.code


# ---------------------------------------------------------------------------
# versioned refresh
# ---------------------------------------------------------------------------


def test_two_phase_append_keeps_identity_and_lockstep_versions():
    table = _correlated(seed=3, n_rows=800)
    single = QueryEngine.from_table(table)
    with ShardRouter.from_table(table, n_shards=2) as router:
        rows = [[int(v) for v in row] for row in
                np.random.default_rng(7).integers(0, CARD, size=(40, N_DIMS))]
        measures = [[float(i % 9)] for i in range(40)]
        assert single.append(rows, measures) == 1
        assert router.append(rows, measures) == 1
        stats = router.stats()
        assert stats["version"] == 1
        assert [s["version"] for s in stats["shards"]] == [1, 1]
        assert stats["rows_absorbed"] == single.stats()["rows_absorbed"]
        rng = np.random.default_rng(43)
        for _ in range(25):
            request = QueryRequest(op="point", cell=_random_cell(rng, (0, 4)))
            assert _strip(router.execute(request)) == _strip(single.execute(request))


def test_append_validation_rejects_before_any_shard_moves():
    table = _correlated(seed=5, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2) as router:
        for rows, measures in (
            ([], None),
            ([[0, 0]], None),                        # wrong arity
            ([[0] * N_DIMS], [[1.0], [2.0]]),        # measure count mismatch
            ([[-1] + [0] * (N_DIMS - 1)], [[1.0]]),  # negative code
        ):
            with pytest.raises(ServeError):
                router.append(rows, measures)
        assert router.version == 0
        assert [s["version"] for s in router.stats()["shards"]] == [0, 0]


def test_version_pinned_request_conflicts_after_refresh():
    table = _correlated(seed=6, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2) as router:
        pinned = QueryRequest(op="point", cell=[None] * N_DIMS, version=0)
        assert router.execute(pinned)["version"] == 0
        router.append([[0] * N_DIMS], [[1.0]])
        with pytest.raises(ServeError) as excinfo:
            router.execute(pinned)
        assert excinfo.value.info.code == ErrorCode.VERSION_CONFLICT
        assert excinfo.value.info.retryable is True
        # inside a batch it degrades to a structured per-item error
        (entry,) = router.execute_batch([pinned])
        assert entry["error"]["code"] == ErrorCode.VERSION_CONFLICT


def test_torn_shard_version_surfaces_as_version_conflict():
    table = _correlated(seed=8, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2) as router:
        # Push shard 1 ahead behind the router's back (a torn swap).
        router._workers[1].call("prepare", 1, [], [], timeout=30)
        router._workers[1].call("commit", 1, timeout=30)
        with pytest.raises(ServeError) as excinfo:
            router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
        assert excinfo.value.info.code == ErrorCode.VERSION_CONFLICT
        assert excinfo.value.info.shard == 1
        assert excinfo.value.info.retryable is True
        # requests routed entirely to the healthy shard still answer
        healthy = router.execute(
            QueryRequest(op="point", cell=[0] + [None] * (N_DIMS - 1))
        )
        assert healthy["version"] == 0


# ---------------------------------------------------------------------------
# failures: dead shards, slow shards, injected faults
# ---------------------------------------------------------------------------


def test_dead_shard_degrades_to_structured_partial_results():
    table = _correlated(seed=9, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2) as router:
        router._workers[1].process.terminate()
        router._workers[1].process.join(timeout=10)
        requests = [
            QueryRequest(op="point", cell=[0] + [None] * (N_DIMS - 1)),  # shard 0
            QueryRequest(op="point", cell=[1] + [None] * (N_DIMS - 1)),  # shard 1
        ]
        live, dead = router.execute_batch(requests)
        assert "error" not in live and live["cell"][0] == 0
        assert dead["error"]["code"] == ErrorCode.SHARD_UNAVAILABLE
        assert dead["error"]["shard"] == 1
        assert dead["error"]["retryable"] is True
        stats = router.stats()
        assert stats["shards_live"] == 1
        assert stats["shards"][1] == {"shard": 1, "alive": False}


def test_slow_shard_times_out_and_the_router_recovers():
    table = _correlated(seed=10, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2, timeout=0.25) as router:
        router._workers[0].call("set_latency", 0.8, timeout=30)
        start = time.perf_counter()
        with pytest.raises(ServeError) as excinfo:
            router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
        assert time.perf_counter() - start < 5.0
        assert excinfo.value.info.code == ErrorCode.SHARD_TIMEOUT
        assert excinfo.value.info.shard == 0
        router._workers[0].call("set_latency", 0.0, timeout=30)
        # the stale late reply is discarded, not mis-paired with this one
        response = router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
        assert response["value"] is not None


def test_concurrent_clients_share_worker_pipes_safely():
    """Concurrent scatters must never mis-pair or drop worker replies.

    Regression test: with collects racing on the worker pipes, one
    thread used to consume another's reply and kill the shard with a
    sequence desync.
    """
    from concurrent.futures import ThreadPoolExecutor

    table = _correlated(seed=14, n_rows=800)
    single = QueryEngine.from_table(table)
    with ShardRouter.from_table(table, n_shards=2) as router:
        rng = np.random.default_rng(3)
        requests = [QueryRequest(op="point", cell=_random_cell(rng, (0, 3)))
                    for _ in range(120)]
        expected = [_strip(single.execute(r)) for r in requests]
        with ThreadPoolExecutor(max_workers=8) as pool:
            mine = list(pool.map(lambda r: _strip(router.execute(r)), requests))
        assert mine == expected
        assert router.stats()["shards_live"] == 2


def test_injected_shard_fault_maps_to_internal_and_recovers():
    table = _correlated(seed=12, n_rows=400)
    with ShardRouter.from_table(table, n_shards=2) as router:
        router._workers[1].call("fail_next", 1, timeout=30)
        with pytest.raises(ServeError) as excinfo:
            router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
        assert excinfo.value.info.code == ErrorCode.INTERNAL
        assert excinfo.value.info.shard == 1
        response = router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
        assert response["value"] is not None


# ---------------------------------------------------------------------------
# routing and the serving surface
# ---------------------------------------------------------------------------


def test_shard_key_bound_requests_route_to_one_shard(tier):
    _, router = tier
    snap = router.snapshot()
    for code in range(CARD):
        plan = router._plan(
            snap, "point",
            QueryRequest(op="point", cell=[code] + [None] * (N_DIMS - 1)),
        )
        assert plan.targets == (code % router.n_shards,)
    scatter = router._plan(
        snap, "point", QueryRequest(op="point", cell=[None] * N_DIMS)
    )
    assert scatter.targets == tuple(range(router.n_shards))
    diced = router._plan(
        snap, "dice",
        QueryRequest(op="dice", predicates={"0": [0, router.n_shards]}),
    )
    assert diced.targets == (0,)  # both values land on shard 0


def test_http_server_and_clients_work_unchanged_over_the_router(tier):
    single, router = tier
    with CubeServer(router, port=0) as server:
        with HTTPCubeClient(server.url) as client:
            request = {"op": "point", "cell": [0] + [None] * (N_DIMS - 1)}
            over_http = _strip(client.query(request))
            assert over_http == _strip(single.execute(QueryRequest(**request)))
            stats = client.stats()
            assert stats["sharded"] is True and stats["n_shards"] == 3
            batch = client.query_batch([request, {"op": "bad"}])
            assert "error" not in batch[0]
            assert batch[1]["error"]["code"] == ErrorCode.BAD_REQUEST
            assert client.healthz()["version"] == router.version


def test_shard_metric_families_are_exposed(tier):
    from repro.obs import get_registry, parse_prometheus_text

    _, router = tier
    router.execute(QueryRequest(op="point", cell=[None] * N_DIMS))
    families = parse_prometheus_text(get_registry().render_prometheus())
    for family in (
        "repro_shard_requests_total",
        "repro_shard_scatter_seconds",
        "repro_shard_fanout",
        "repro_shard_live",
    ):
        assert family in families, family


def test_router_repr_and_point_helper(tier):
    single, router = tier
    assert "3/3 shards" in repr(router) or "shards live" in repr(router)
    cell = [0] + [None] * (N_DIMS - 1)
    assert router.point(cell) == single.point(cell)
