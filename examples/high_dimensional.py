"""High-dimensional OLAP: range cube vs shell fragments at 14 dimensions.

At 14 dimensions a full cube has 16,384 cuboids; materializing it — even
compressed — is rarely the right call.  This example contrasts the two
strategies the repository offers:

* **range cubing an iceberg** — materialize only cells with enough
  support, compressed into ranges (precomputation-heavy, instant answers);
* **shell fragments** — precompute only 2-dimension fragment cubes with
  inverted tid-lists and assemble any cell online (precomputation-light,
  pay per query).

Both answer the same queries; the printout shows the storage each needs
and times a query batch against each.

Run:  python examples/high_dimensional.py
"""

import time

from repro.baselines.shell_fragments import ShellFragmentCube
from repro.core.range_cubing import range_cubing
from repro.data.synthetic import zipf_table

N_DIMS = 14
N_ROWS = 3000
MIN_SUPPORT = 30


def main() -> None:
    table = zipf_table(N_ROWS, N_DIMS, 20, theta=1.3, seed=17)
    print(f"{N_ROWS:,} rows x {N_DIMS} dims -> {2 ** N_DIMS:,} cuboids in the full cube\n")

    start = time.perf_counter()
    iceberg = range_cubing(table, min_support=MIN_SUPPORT)
    iceberg_seconds = time.perf_counter() - start
    print(f"iceberg range cube (min support {MIN_SUPPORT}): "
          f"{iceberg.n_ranges:,} ranges / {iceberg.n_cells:,} cells, "
          f"built in {iceberg_seconds:.2f}s")

    start = time.perf_counter()
    shell = ShellFragmentCube(table, fragment_size=2)
    shell_seconds = time.perf_counter() - start
    print(f"shell fragments (size 2): {shell.n_fragments} fragments, "
          f"{shell.n_stored_cells():,} local cells, "
          f"{shell.stored_tid_entries():,} tid entries, "
          f"built in {shell_seconds:.2f}s\n")

    # A query batch: the 200 most supported iceberg cells.
    queries = [
        r.general for r in sorted(iceberg, key=lambda r: -r.state[0])[:200]
    ]

    start = time.perf_counter()
    iceberg_answers = [iceberg.lookup(cell) for cell in queries]
    iceberg_query_seconds = time.perf_counter() - start

    start = time.perf_counter()
    shell_answers = [shell.lookup(cell) for cell in queries]
    shell_query_seconds = time.perf_counter() - start

    for a, b in zip(iceberg_answers, shell_answers):
        assert a[0] == b[0]
    print(f"{len(queries)} point queries:")
    print(f"   iceberg range cube: {1000 * iceberg_query_seconds:.1f} ms total")
    print(f"   shell fragments:    {1000 * shell_query_seconds:.1f} ms total")
    print("   (all answers identical)\n")

    # The shell can also answer below the iceberg threshold.
    rare = next(
        cell
        for cell in (r.specific for r in iceberg)
        if shell.lookup(cell) is not None
    )
    print(f"shell answer for an arbitrary cell: count={shell.lookup(rare)[0]}")
    print("the iceberg cube deliberately dropped everything under "
          f"{MIN_SUPPORT}; the shell assembles any cell on demand.")


if __name__ == "__main__":
    main()
