"""Retail sales analysis on a correlated synthetic fact table.

The workload the paper's introduction motivates: a sales warehouse
(store, region, product, category, month) where the schema carries the
real-world correlations store -> region and product -> category ("Store
Starbucks always makes Product Coffee").  The script

1. generates the fact table with those functional dependencies injected,
2. computes the range cube and shows how the correlation compresses it,
3. runs a small OLAP session: total revenue, per-region roll-ups, a
   drill-down into the strongest region, and an iceberg query for
   (store, product) pairs with enough sales volume.

Run:  python examples/sales_analysis.py
"""

import numpy as np

from repro import CubeQuery, range_cubing, range_cubing_detailed
from repro.cube.cell import n_bound
from repro.data.correlated import FunctionalDependency, correlated_table

N_ROWS = 4000
STORE, REGION, PRODUCT, CATEGORY, MONTH = range(5)
DIM_NAMES = ["store", "region", "product", "category", "month"]


def build_sales_table():
    table = correlated_table(
        n_rows=N_ROWS,
        n_dims=5,
        cardinality=[60, 8, 40, 6, 12],
        dependencies=[
            FunctionalDependency((STORE,), (REGION,)),
            FunctionalDependency((PRODUCT,), (CATEGORY,)),
        ],
        theta=1.0,
        seed=42,
    )
    # Rename the generated d0..d4 dimensions to meaningful names.
    from repro import BaseTable, Dimension, Schema

    renamed = Schema(
        tuple(
            Dimension(name, d.cardinality)
            for d, name in zip(table.schema.dimensions, DIM_NAMES)
        ),
        table.schema.measures,
    )
    return BaseTable(renamed, table.dim_codes, table.measures)


def main() -> None:
    table = build_sales_table()
    print(f"fact table: {table.n_rows} sales over dims {DIM_NAMES}")

    cube, stats = range_cubing_detailed(table)
    print(
        f"range cube computed in {stats['total_seconds']:.2f}s: "
        f"{cube.n_ranges:,} ranges for {cube.n_cells:,} cells "
        f"(tuple ratio {100 * cube.tuple_ratio():.1f}%)"
    )
    print(
        f"the store->region and product->category dependencies let one range "
        f"tuple stand for {cube.n_cells / cube.n_ranges:.2f} cells on average\n"
    )

    q = CubeQuery(cube, table.schema, table)
    total = q.point()
    print(f"total: {total['count']} sales, revenue {total['sum']:,.0f}\n")

    apex = q.cell_for({})
    regions = q.drill_down(apex, "region")
    regions.sort(key=lambda item: -item[1]["sum"])
    print("revenue by region:")
    for cell, value in regions:
        print(f"   region={cell[REGION]:>2}: {value['sum']:>12,.0f}  ({value['count']} sales)")

    top_region_cell, top_value = regions[0]
    print(f"\ndrill into region {top_region_cell[REGION]} by category:")
    for cell, value in q.drill_down(top_region_cell, "category"):
        print(f"   category={cell[CATEGORY]}: {value['sum']:>12,.0f}")

    # Iceberg: (store, product) pairs with at least 20 sales.
    iceberg = range_cubing(table, min_support=20)
    pairs = [
        (r, r.state)
        for r in iceberg
        if r.specific[STORE] is not None
        and r.specific[PRODUCT] is not None
        and n_bound(r.general) <= 2
    ]
    print(f"\niceberg (min 20 sales): {len(pairs)} strong (store, product) ranges, top 5:")
    for r, state in sorted(pairs, key=lambda item: -item[1][0])[:5]:
        print(f"   {r.to_string():28s} count={state[0]:>3} revenue={state[1]:>10,.0f}")

    # Sanity: the compressed cube agrees with a direct scan.
    store0 = int(np.argmax(np.bincount(table.dim_column(STORE))))
    mask = table.dim_column(STORE) == store0
    assert q.point(store=store0)["count"] == int(mask.sum())
    print(f"\nverified against a base-table scan: store {store0} has {int(mask.sum())} sales")


if __name__ == "__main__":
    main()
