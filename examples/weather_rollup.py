"""The paper's real-data scenario: cubing correlated weather reports.

Generates the simulated September-1985 weather table (same schema and
correlation structure as the dataset in the paper's Section 6.2), computes
its range cube, and shows why correlated data is where range cubing wins:

* the station -> (longitude, latitude) dependency collapses whole chains
  of H-tree nodes into single range-trie keys (node ratio);
* every range tuple summarizes many cells (tuple ratio);
* roll-ups across the correlated dimensions still answer instantly.

Run:  python examples/weather_rollup.py [n_rows]
"""

import sys

from repro import CubeQuery, RangeTrie, range_cubing
from repro.baselines.htree import HTree
from repro.data.weather import weather_table

STATION = 0


def main(n_rows: int = 8000) -> None:
    table = weather_table(n_rows, seed=7)
    print(f"simulated weather table: {table.n_rows:,} reports")
    print(f"observed cardinalities: "
          + ", ".join(
              f"{name}={table.distinct_count(i)}"
              for i, name in enumerate(table.schema.dimension_names)
          ))

    trie = RangeTrie.build(table)
    htree = HTree.build(table)
    print(
        f"\nrange trie: {trie.n_nodes():,} nodes vs H-tree: {htree.n_nodes():,} nodes "
        f"(node ratio {100 * trie.n_nodes() / htree.n_nodes():.1f}%)"
    )
    print("   (station determines longitude+latitude, so one trie key absorbs "
          "what costs the H-tree two extra levels of nodes)")

    cube = range_cubing(table)
    print(
        f"\nrange cube: {cube.n_ranges:,} ranges for {cube.n_cells:,} cells "
        f"(tuple ratio {100 * cube.tuple_ratio():.2f}%)"
    )

    q = CubeQuery(cube, table.schema, table)
    busiest = max(
        range(table.distinct_count(STATION)),
        key=lambda s: q.point(station_id=s)["count"] if q.point(station_id=s) else 0,
    )
    report = q.point(station_id=busiest)
    print(f"\nbusiest station {busiest}: {report['count']} reports, "
          f"temperature sum {report['sum']:.1f}")

    # Because station implies longitude, binding the longitude too cannot
    # change the answer — both cells live in the same range.
    station_cell = q.cell_for({"station_id": busiest})
    r = cube.range_of(station_cell)
    longitude = r.specific[1]
    both = q.point(station_id=busiest, longitude=int(longitude))
    print(f"station {busiest} + its longitude {longitude}: {both['count']} reports "
          f"(same range: {r.to_string()})")
    assert both == report

    print("\nday/night split (brightness is derived from solar altitude):")
    for cell, value in q.drill_down(q.cell_for({}), "brightness"):
        label = "night" if cell[-1] == 0 else "day"
        print(f"   {label}: {value['count']:,} reports, "
              f"mean temp {value['sum'] / value['count']:.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
