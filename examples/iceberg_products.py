"""Iceberg cubing: mining only the heavy cells of a skewed product log.

Full cubes explode on sparse data; analysts usually only care about
combinations with enough support.  This example computes iceberg range
cubes over a skewed clickstream-like table at increasing support
thresholds and shows the paper's Apriori pruning at work: run time and
output size collapse as the threshold rises, and every algorithm in the
repository (range cubing, BUC, H-Cubing, star-cubing) returns the same
iceberg cells.

Run:  python examples/iceberg_products.py
"""

import time

from repro import range_cubing
from repro.baselines.buc import buc
from repro.baselines.hcubing import h_cubing
from repro.baselines.star_cubing import star_cubing
from repro.data.synthetic import zipf_table


def main() -> None:
    table = zipf_table(n_rows=5000, n_dims=6, cardinality=80, theta=1.8, seed=13)
    print(f"skewed event table: {table.n_rows:,} rows, "
          f"{table.n_dims} dims, Zipf 1.8\n")

    print(f"{'min support':>12}  {'ranges':>9}  {'iceberg cells':>13}  {'seconds':>8}")
    cubes = {}
    for min_support in (1, 4, 16, 64, 256):
        start = time.perf_counter()
        cube = range_cubing(table, min_support=min_support)
        seconds = time.perf_counter() - start
        cubes[min_support] = cube
        print(f"{min_support:>12}  {cube.n_ranges:>9,}  {cube.n_cells:>13,}  {seconds:>8.2f}")

    min_support = 64
    cube = cubes[min_support]
    print(f"\ncross-checking the min_support={min_support} iceberg against the baselines:")
    expected = dict(cube.expand())
    for name, algorithm in [("BUC", buc), ("H-Cubing", h_cubing), ("star-cubing", star_cubing)]:
        start = time.perf_counter()
        other = algorithm(table, min_support=min_support)
        seconds = time.perf_counter() - start
        same = other.as_dict().keys() == expected.keys() and all(
            other.as_dict()[c][0] == expected[c][0] for c in expected
        )
        print(f"   {name:<12} {len(other):>6,} cells in {seconds:5.2f}s  match={same}")
        assert same

    print("\nheaviest multi-dimensional iceberg ranges:")
    heavy = [r for r in cube if any(v is not None for v in r.general)]
    for r in sorted(heavy, key=lambda r: -r.state[0])[:8]:
        print(f"   {r.to_string():40s} count={r.state[0]}")


if __name__ == "__main__":
    main()
