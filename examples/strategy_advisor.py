"""Choosing a cubing strategy: estimate first, compute second.

Materializing the wrong way costs hours; this example shows the decision
loop a warehouse operator would actually run:

1. estimate each candidate table's full-cube size from a 2,000-row sample
   (GEE estimator — no full scan);
2. let :func:`repro.cube.estimate.recommend_strategy` pick a regime
   (dense -> MultiWay arrays, sparse/correlated -> range cubing,
   very high-dimensional -> shell fragments);
3. run the recommendation and sanity-check the estimate against the
   real cube;
4. for a question no precomputed cube can answer — the *median* — fall
   back to shell fragments, whose tid-lists reach the base tuples.

Run:  python examples/strategy_advisor.py
"""

import numpy as np

from repro.baselines.multiway import multiway
from repro.baselines.shell_fragments import ShellFragmentCube
from repro.core.range_cubing import range_cubing
from repro.cube.estimate import estimate_full_cube_size, recommend_strategy
from repro.data.retail import retail_dataset
from repro.data.synthetic import uniform_table, zipf_table


def main() -> None:
    candidates = {
        "dense survey (5 dims, card 4)": uniform_table(6000, 5, 4, seed=21),
        "retail sales (correlated)": retail_dataset(6000, seed=21).table,
        "sparse logs (card 500)": zipf_table(6000, 5, 500, theta=1.0, seed=21),
    }

    print(f"{'table':<30} {'est. cells':>12} {'strategy':>16}")
    advice_by_name = {}
    for name, table in candidates.items():
        advice = recommend_strategy(table, sample_size=2000, seed=3)
        advice_by_name[name] = advice
        print(f"{name:<30} {advice.estimated_cells:>12,.0f} {advice.strategy:>16}")

    print("\nacting on the advice:")
    for name, table in candidates.items():
        advice = advice_by_name[name]
        if advice.strategy == "multiway":
            cube = multiway(table)
            actual = len(cube)
        else:
            cube = range_cubing(table)
            actual = cube.n_cells
        error = advice.estimated_cells / actual
        print(f"   {name}: {advice.strategy} -> {actual:,} cells "
              f"(estimate was {error:.2f}x the truth)")

    # A holistic question: median revenue per region — needs base tuples.
    table = candidates["retail sales (correlated)"]
    shell = ShellFragmentCube(table, fragment_size=2)
    print("\nmedian revenue by region (holistic — via shell-fragment tid-lists):")
    for region in sorted(set(table.dim_column(1).tolist())):
        cell = (None, region, None, None, None)
        median = shell.holistic(cell, np.median, measure_index=1)
        print(f"   region {region}: median sale {median:,.2f}")


if __name__ == "__main__":
    main()
