"""Hierarchical roll-ups: cubing a year of sales at day/month/year level.

Warehouses attach concept hierarchies to dimensions (day -> month ->
year); every cube algorithm in this repository lifts to hierarchies by
recoding the dimension at the requested level before cubing.  The script
cubes one year of sales at each calendar level and checks the levels
against each other.  It also illustrates the paper's density analysis
from the other side: rolling a dimension up *shrinks* the cube (values
merge, cells disappear) but makes the remaining data denser, and on dense
data the range cube's relative compression fades — exactly the paper's
observation that in the dense regime a range cube approaches the
uncompressed cube (its trie approaches an H-tree).

Run:  python examples/calendar_hierarchy.py
"""

from repro import CubeQuery, range_cubing
from repro.cube.hierarchy import Hierarchy, roll_up_dimension
from repro.data.synthetic import zipf_table

DAY_DIM = 0
N_DAYS = 360


def main() -> None:
    # dims: day-of-year, store, product
    table = zipf_table(6000, 3, [N_DAYS, 30, 50], theta=1.0, seed=11)
    calendar = Hierarchy.calendar(N_DAYS)

    print(f"{'level':>7}  {'cardinality':>11}  {'ranges':>8}  {'cells':>9}  {'tuple ratio':>11}")
    cubes = {}
    for level in calendar.levels:
        rolled = (
            table if level == "day" else roll_up_dimension(table, DAY_DIM, calendar, level)
        )
        cube = range_cubing(rolled)
        cubes[level] = (rolled, cube)
        print(
            f"{level:>7}  {rolled.distinct_count(DAY_DIM):>11}  "
            f"{cube.n_ranges:>8,}  {cube.n_cells:>9,}  "
            f"{100 * cube.tuple_ratio():>10.2f}%"
        )

    # Cross-level consistency: January == sum of days 0..29.
    _, day_cube = cubes["day"]
    month_table, month_cube = cubes["month"]
    january = month_cube.lookup((0, None, None))
    day_sum = 0
    for day in range(30):
        state = day_cube.lookup((day, None, None))
        if state is not None:
            day_sum += state[0]
    assert january[0] == day_sum
    print(f"\nJanuary at month level: {january[0]} sales "
          f"== sum over its 30 day-level cells: {day_sum}")
    print("note how the absolute cube shrinks with each level while the")
    print("tuple ratio rises: coarser levels densify the data, and dense")
    print("data is where range compression fades (paper, Figure 8's 2-4 dim regime).")

    q = CubeQuery(month_cube, month_table.schema, month_table)
    months = q.drill_down(q.cell_for({}), "d0@month")
    best = max(months, key=lambda item: item[1]["sum"])
    print(f"best month: {best[0][DAY_DIM]} with revenue {best[1]['sum']:,.0f} "
          f"({best[1]['count']} sales)")


if __name__ == "__main__":
    main()
