"""Census of lossless cube compressions: range vs condensed vs quotient.

Places the range cube between the two compression baselines the paper
relates itself to (Related Work, items 2; Section 6's "close to
optimality" remark):

* the BST-condensed cube compresses only single-base-tuple families;
* the quotient cube is the *optimal* convex compression (cell classes);
* the range cube lands between the two — near-optimal space at a fraction
  of the computation.

Run:  python examples/compression_census.py
"""

import time

from repro.data.correlated import FunctionalDependency, correlated_table
from repro.data.synthetic import uniform_table, zipf_table
from repro.data.weather import weather_table
from repro.harness.ablations import compression_census
from repro.harness.report import print_table


def main() -> None:
    tables = {
        "uniform (dense-ish)": uniform_table(1200, 5, 12, seed=5),
        "zipf 1.5 (skewed)": zipf_table(1200, 5, 60, theta=1.5, seed=5),
        "zipf + FDs (correlated)": correlated_table(
            1200, 5, 60,
            [FunctionalDependency((0,), (1,)), FunctionalDependency((2,), (3,))],
            theta=1.5, seed=5,
        ),
        "weather (simulated)": weather_table(1200, seed=5),
    }

    start = time.perf_counter()
    rows = compression_census(tables)
    seconds = time.perf_counter() - start

    print_table(
        rows,
        [
            ("dataset", "dataset", "s"),
            ("full_cells", "full cells", ",.0f"),
            ("range_tuples", "ranges", ",.0f"),
            ("tuple_ratio", "range ratio", "pct"),
            ("condensed_tuples", "condensed", ",.0f"),
            ("condensed_ratio", "condensed ratio", "pct"),
            ("quotient_classes", "quotient classes", ",.0f"),
            ("quotient_ratio", "optimal ratio", "pct"),
        ],
        "Lossless cube compression census",
    )
    print(f"\n(computed in {seconds:.1f}s)")
    print("reading guide: optimal <= range <= 100%; the more correlated the data,")
    print("the closer the range cube sits to the quotient optimum while being")
    print("computed in a single pass instead of a closure search per class.")

    for row in rows:
        assert row["quotient_classes"] <= row["range_tuples"] <= row["full_cells"]


if __name__ == "__main__":
    main()
