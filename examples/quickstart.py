"""Quickstart: compute and inspect a range cube in a dozen lines.

Builds the paper's running sales example (Figure 2(a)), computes its range
cube, prints the range tuples in the paper's notation, and answers a few
point queries — demonstrating that the compressed cube is queried exactly
like an ordinary one.

Run:  python examples/quickstart.py
"""

from repro import BaseTable, CubeQuery, Schema, range_cubing


def main() -> None:
    schema = Schema.from_names(["store", "city", "product", "date"], ["price"])
    table = BaseTable.from_rows(
        schema,
        [
            ("S1", "C1", "P1", "D1", 100.0),
            ("S1", "C1", "P2", "D2", 500.0),
            ("S2", "C1", "P1", "D2", 200.0),
            ("S2", "C2", "P1", "D2", 1200.0),
            ("S2", "C3", "P2", "D2", 400.0),
            ("S3", "C3", "P3", "D1", 2500.0),
        ],
    )

    cube = range_cubing(table)
    print(f"{table!r}")
    print(
        f"range cube: {cube.n_ranges} range tuples representing "
        f"{cube.n_cells} cells ({100 * cube.tuple_ratio():.1f}% of the full cube)\n"
    )

    print("range tuples (v' = marked: the cell may bind it or leave it *):")
    for line in cube.sorted_strings(table.encoder):
        print("  ", line)

    query = CubeQuery(cube, schema, table)
    print("\npoint queries against the compressed cube:")
    for bindings in [
        {"store": "S1"},
        {"store": "S2", "city": "C1"},
        {"product": "P1"},
        {},
    ]:
        label = ", ".join(f"{k}={v}" for k, v in bindings.items()) or "apex (*, *, *, *)"
        print(f"   {label:24s} -> {query.point(**bindings)}")

    cell = query.cell_for({"store": "S1", "city": "C1"})
    up, value = query.roll_up(cell, "city")
    print(f"\nroll-up {query.decode(cell)} -> {query.decode(up)}: {value}")
    for child, child_value in query.drill_down(up, "product"):
        print(f"drill-down on product: {query.decode(child)}: {child_value}")


if __name__ == "__main__":
    main()
