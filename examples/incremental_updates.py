"""Incremental cube maintenance: absorbing daily fact loads.

A warehouse rarely recomputes its cube from scratch — facts arrive in
batches.  Because the range trie is invariant to insertion order, a
resident :class:`~repro.core.incremental.IncrementalRangeCuber` absorbs
each day's load and re-emits the range cube on demand, and the result is
*identical* to a full recompute over the whole history.  This script
simulates a week of loads, refreshes after each, verifies the refresh
against a batch recompute, and reports how the amortized refresh cost
compares.

Run:  python examples/incremental_updates.py
"""

import time

import numpy as np

from repro.core.incremental import IncrementalRangeCuber
from repro.core.range_cubing import range_cubing
from repro.data.synthetic import zipf_table
from repro.table.base_table import BaseTable

N_DAYS = 7
ROWS_PER_DAY = 800
N_DIMS = 5
CARDINALITY = 40


def daily_batches():
    """One skewed fact batch per day (different seed per day)."""
    for day in range(N_DAYS):
        yield zipf_table(ROWS_PER_DAY, N_DIMS, CARDINALITY, theta=1.2, seed=100 + day)


def concatenate(tables):
    first = tables[0]
    codes = np.concatenate([t.dim_codes for t in tables])
    measures = np.concatenate([t.measures for t in tables])
    return BaseTable(first.schema, codes, measures)


def main() -> None:
    cuber = IncrementalRangeCuber(N_DIMS)
    history = []
    print(f"{'day':>4}  {'rows total':>10}  {'trie nodes':>10}  "
          f"{'refresh (s)':>11}  {'batch recompute (s)':>19}")
    for day, batch in enumerate(daily_batches(), start=1):
        history.append(batch)

        start = time.perf_counter()
        cuber.insert_table(batch)
        cube = cuber.cube()
        refresh_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch_cube = range_cubing(concatenate(history))
        batch_seconds = time.perf_counter() - start

        assert cube.n_ranges == batch_cube.n_ranges
        assert dict(cube.expand()) == dict(batch_cube.expand())

        print(f"{day:>4}  {cuber.n_rows_absorbed:>10,}  {cuber.trie_nodes:>10,}  "
              f"{refresh_seconds:>11.3f}  {batch_seconds:>19.3f}")

    print("\nevery refresh verified equal to a from-scratch recompute;")
    print("the incremental path only pays insertion for the new batch plus")
    print("the traversal, while the batch path re-inserts the whole history.")


if __name__ == "__main__":
    main()
